#ifndef TKC_BENCH_BENCH_COMMON_H_
#define TKC_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "datasets/registry.h"
#include "graph/graph_stats.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/query_workload.h"

/// \file bench_common.h
/// Shared plumbing for the figure-reproduction benchmark binaries. Every
/// binary accepts:
///   --scale=F     global dataset size multiplier        (default 1.0)
///   --queries=N   query ranges averaged per data point  (default 3)
///   --limit=S     per-run time limit in seconds         (default 5.0)
///   --datasets=A,B,C   restrict to a subset             (default: all)
///   --smoke       CI fast mode (also TKC_BENCH_SMOKE=1): tiny scale, one
///                 query, a short limit, and a three-dataset default subset
///                 so every benchmark finishes in seconds yet still emits
///                 its table and JSON
/// and environment fallbacks TKC_SCALE / TKC_QUERIES / TKC_LIMIT /
/// TKC_DATASETS. Time-limited runs are reported as "DNF" ("did not
/// finish"), mirroring the paper's 6-hour cutoff entries.

namespace tkc::bench {

/// True when the CI fast mode is requested: `--smoke[=1]` on the command
/// line or TKC_BENCH_SMOKE=1 in the environment. Benchmarks that do not use
/// BenchConfig (the perf-tracking ones) call this directly and shrink their
/// own knobs.
inline bool SmokeModeRequested(const Flags& flags) {
  if (flags.Has("smoke")) return flags.GetBool("smoke", true);
  const char* env = std::getenv("TKC_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

struct BenchConfig {
  double scale = 1.0;
  uint32_t queries = 2;
  double limit_seconds = 3.0;
  std::vector<std::string> datasets;  // empty = all fourteen
  uint64_t seed = 42;
  bool smoke = false;
  /// Fan the per-dataset loop out over the shared pool. Count/size figures
  /// default to true (results are deterministic); latency figures default
  /// to false so the paper's serial per-query timings stay faithful, and
  /// accept `--parallel-datasets=1` to trade fidelity for wall-clock.
  bool parallel_datasets = true;
};

inline BenchConfig ParseBenchConfig(int argc, char** argv,
                                    bool parallel_datasets_default = true) {
  BenchConfig config;
  config.parallel_datasets = parallel_datasets_default;
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 flags_or.status().ToString().c_str());
    return config;
  }
  const Flags& flags = *flags_or;
  config.smoke = SmokeModeRequested(flags);
  if (config.smoke) {
    // Fast-mode defaults; explicit flags below still override them.
    config.scale = 0.3;
    config.queries = 1;
    config.limit_seconds = 1.0;
    config.datasets = {"CM", "MC", "EM"};
  }
  config.scale = flags.GetDouble("scale", config.scale);
  config.queries =
      static_cast<uint32_t>(flags.GetInt("queries", config.queries));
  config.limit_seconds = flags.GetDouble("limit", config.limit_seconds);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  config.parallel_datasets =
      flags.GetBool("parallel-datasets", config.parallel_datasets);
  std::string list = flags.GetString("datasets", "");
  size_t pos = 0;
  if (!list.empty()) config.datasets.clear();
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    if (comma > pos) config.datasets.push_back(list.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return config;
}

/// A generated dataset with its statistics and workload (lazy container).
struct PreparedDataset {
  std::string name;
  TemporalGraph graph;
  GraphStats stats;
};

/// Generates one registry dataset and computes its Table III stats.
inline StatusOr<PreparedDataset> Prepare(const std::string& name,
                                         double scale) {
  auto graph = GenerateByName(name, scale);
  if (!graph.ok()) return graph.status();
  PreparedDataset d;
  d.name = name;
  d.graph = std::move(graph).value();
  d.stats = ComputeGraphStats(d.graph);
  return d;
}

/// Names selected by the config (all fourteen when unrestricted).
inline std::vector<std::string> SelectedDatasets(const BenchConfig& config) {
  if (!config.datasets.empty()) return config.datasets;
  std::vector<std::string> names;
  for (const auto& spec : TableIIISpecs(config.scale)) {
    names.push_back(spec.name);
  }
  return names;
}

/// One rendered table row.
using TableRow = std::vector<std::string>;

/// Prepares and measures every dataset concurrently on the shared pool (the
/// ROADMAP follow-up of fanning the figure benchmarks' per-dataset loops
/// out), then returns every row in input order so the printed tables stay
/// byte-stable across thread counts. `row_fn(name)` produces the finished
/// rows for one dataset and must not touch shared mutable state; algorithm
/// runs inside one dataset stay serial because a nested ParallelFor on the
/// shared pool degrades to an inline loop, so per-query timings keep their
/// meaning (datasets merely overlap with each other).
/// The shared fan-out skeleton: fn(name) for every dataset — concurrently
/// over the shared pool when `parallel`, serially otherwise — with results
/// returned in input order.
template <typename T, typename Fn>
inline std::vector<T> CollectPerDataset(const std::vector<std::string>& names,
                                        Fn&& fn, bool parallel) {
  std::vector<T> results(names.size());
  if (parallel) {
    ThreadPool::Shared().ParallelFor(
        names.size(),
        [&](size_t i, int /*worker*/) { results[i] = fn(names[i]); });
  } else {
    for (size_t i = 0; i < names.size(); ++i) results[i] = fn(names[i]);
  }
  return results;
}

template <typename RowFn>
inline std::vector<TableRow> CollectDatasetRows(
    const std::vector<std::string>& names, RowFn&& row_fn,
    bool parallel = true) {
  auto per_dataset = CollectPerDataset<std::vector<TableRow>>(
      names, std::forward<RowFn>(row_fn), parallel);
  std::vector<TableRow> rows;
  for (auto& dataset_rows : per_dataset) {
    for (auto& row : dataset_rows) rows.push_back(std::move(row));
  }
  return rows;
}

/// As CollectDatasetRows for the benchmarks that print one multi-row
/// *section* per dataset (figures 7/8): `section_fn(name)` renders a whole
/// section to a string off to the side, and the sections are printed in
/// input order once all datasets finish.
template <typename SectionFn>
inline void PrintDatasetSections(const std::vector<std::string>& names,
                                 SectionFn&& section_fn,
                                 bool parallel = true) {
  for (const std::string& section : CollectPerDataset<std::string>(
           names, std::forward<SectionFn>(section_fn), parallel)) {
    std::fputs(section.c_str(), stdout);
  }
}

/// Builds the workload for one dataset at the given fractions; returns an
/// empty vector (and prints a note) when no valid ranges exist.
inline std::vector<Query> MakeQueries(const PreparedDataset& d,
                                      const BenchConfig& config,
                                      double k_fraction,
                                      double range_fraction) {
  WorkloadSpec spec;
  spec.k_fraction = k_fraction;
  spec.range_fraction = range_fraction;
  spec.num_queries = config.queries;
  spec.seed = config.seed;
  auto queries = GenerateQueries(d.graph, d.stats.kmax, spec);
  if (!queries.ok()) {
    std::fprintf(stderr, "note: %s (k=%.0f%%, range=%.0f%%): %s\n",
                 d.name.c_str(), k_fraction * 100, range_fraction * 100,
                 queries.status().ToString().c_str());
    return {};
  }
  return std::move(queries).value();
}

/// Formats an aggregate runtime cell: seconds, or DNF on timeout/error.
inline std::string TimeCell(const AggregateOutcome& agg) {
  if (!agg.completed) return "DNF";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", agg.avg_seconds);
  return buf;
}

/// Minimal machine-readable output for perf-tracking benchmarks: a JSON
/// array of flat objects, written to a BENCH_*.json file so future PRs can
/// diff the perf trajectory. Keys must be plain identifiers; string values
/// are escaped for quotes and backslashes only.
class JsonRecords {
 public:
  void BeginRecord() {
    records_.emplace_back();
  }
  void Add(const std::string& key, const std::string& value) {
    std::string escaped;
    for (char c : value) {
      if (c == '"' || c == '\\') escaped += '\\';
      escaped += c;
    }
    AddRaw(key, "\"" + escaped + "\"");
  }
  void Add(const std::string& key, double value) {
    // Non-finite values render as the Python-parseable constants (glibc's
    // "%g" would print bare "nan"/"inf", which no JSON parser accepts).
    // Benchmarks should guard their ratios so these never appear — and
    // tools/check_bench_regression.py hard-fails on them if one slips
    // through, instead of a NaN silently passing every threshold compare.
    if (std::isnan(value)) {
      AddRaw(key, "NaN");
      return;
    }
    if (std::isinf(value)) {
      AddRaw(key, value > 0 ? "Infinity" : "-Infinity");
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    AddRaw(key, buf);
  }
  void Add(const std::string& key, uint64_t value) {
    AddRaw(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    AddRaw(key, std::to_string(value));
  }
  void Add(const std::string& key, bool value) {
    AddRaw(key, value ? "true" : "false");
  }

  std::string ToString() const {
    std::string out = "[\n";
    for (size_t r = 0; r < records_.size(); ++r) {
      out += "  {";
      for (size_t f = 0; f < records_[r].size(); ++f) {
        if (f > 0) out += ", ";
        out += "\"" + records_[r][f].first + "\": " + records_[r][f].second;
      }
      out += r + 1 < records_.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
  }

  /// Writes the array to `path`; returns false (with a note) on failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "note: cannot write %s\n", path.c_str());
      return false;
    }
    std::string body = ToString();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  void AddRaw(const std::string& key, std::string rendered) {
    TKC_CHECK(!records_.empty());  // Add requires a prior BeginRecord
    records_.back().emplace_back(key, std::move(rendered));
  }
  std::vector<std::vector<std::pair<std::string, std::string>>> records_;
};

}  // namespace tkc::bench

#endif  // TKC_BENCH_BENCH_COMMON_H_
