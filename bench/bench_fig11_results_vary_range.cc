// Reproduces Figure 11: the average number of temporal k-cores as the
// query time range varies over 5/10/20/40% of tmax on the sweep datasets.
// Paper shape: counts grow ~2 orders of magnitude from 5% to 40%.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  if (config.datasets.empty()) config.datasets = SweepDatasetNames();
  const double kRangeFractions[] = {0.05, 0.10, 0.20, 0.40};

  std::printf(
      "=== Figure 11: avg number of cores vs time range (k=30%% kmax, %u "
      "queries) ===\n",
      config.queries);
  // Datasets render their sections concurrently over the shared pool; the
  // inner batch calls nest and run inline on the claiming worker.
  PrintDatasetSections(config.datasets, [&](const std::string& name) {
    auto prepared = Prepare(name, config.scale);
    if (!prepared.ok()) return std::string();
    char heading[128];
    std::snprintf(heading, sizeof(heading), "\n--- %s ---\n", name.c_str());
    TextTable table;
    table.SetHeader({"range", "num_cores", "|R| (edges)"});
    for (double rf : kRangeFractions) {
      std::vector<Query> queries = MakeQueries(*prepared, config, 0.30, rf);
      char label[16];
      std::snprintf(label, sizeof(label), "%.0f%%", rf * 100);
      if (queries.empty()) {
        table.AddRow({label, "n/a", "n/a"});
        continue;
      }
      // Count figure: timing-insensitive; the DNF cutoff is scaled by the
      // pool size to absorb cross-dataset contention.
      ThreadPool& pool = ThreadPool::Shared();
      AggregateOutcome agg = RunAlgorithmOnQueries(
          AlgorithmKind::kEnum, prepared->graph, queries,
          config.limit_seconds * pool.num_threads(), &pool);
      table.AddRow({label,
                    agg.completed ? TextTable::CellSci(agg.avg_num_cores)
                                  : "DNF",
                    agg.completed
                        ? TextTable::CellSci(agg.avg_result_size_edges)
                        : "DNF"});
    }
    return heading + table.ToString();
  }, config.parallel_datasets);
  std::printf(
      "\nExpected shape (paper): counts rise ~2 orders of magnitude from "
      "5%% to 40%% ranges.\n");
  return 0;
}
