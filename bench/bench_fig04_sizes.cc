// Reproduces Figure 4: |VCT|, |VCT| * avg_degree, and |R| (in bytes) for
// the representative datasets under default parameters (k = 30% kmax,
// range = 10% tmax). Paper shape: |R| is 2-4 orders of magnitude larger
// than |VCT| * deg_avg on every dataset, demonstrating that the overall
// running time O(|VCT|*deg_avg + |R|) is dominated by the result size.

#include <cstdio>

#include "bench/bench_common.h"
#include "vct/vct_index.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  // The paper's Figure 4 uses CM EM MC LR EN SU WT; honor --datasets.
  if (config.datasets.empty()) {
    config.datasets = {"CM", "EM", "MC", "LR", "EN", "SU", "WT"};
  }

  std::printf(
      "=== Figure 4: |VCT|, |VCT|*deg_avg, |R| in bytes (k=30%% kmax, "
      "range=10%% tmax) ===\n");
  TextTable table;
  table.SetHeader({"Dataset", "|VCT|(B)", "|VCT|*deg_avg(B)", "|R|(B)",
                   "ratio |R|/(|VCT|*deg)"});
  // Size figure: results are deterministic, so datasets fan out; the DNF
  // cutoff is scaled by the pool size to absorb cross-dataset contention.
  const double limit =
      config.parallel_datasets
          ? config.limit_seconds * ThreadPool::Shared().num_threads()
          : config.limit_seconds;
  auto rows = CollectDatasetRows(
      config.datasets,
      [&](const std::string& name) -> std::vector<TableRow> {
        auto prepared = Prepare(name, config.scale);
        if (!prepared.ok()) return {};
        std::vector<Query> queries =
            MakeQueries(*prepared, config, 0.30, 0.10);
        if (queries.empty()) return {{name, "n/a", "n/a", "n/a", "n/a"}};
        AggregateOutcome agg = RunAlgorithmOnQueries(
            AlgorithmKind::kEnum, prepared->graph, queries, limit);
        if (!agg.completed) return {{name, "DNF", "DNF", "DNF", "DNF"}};
        // Bytes mirror the paper's unit: one VCT entry = 8 bytes (two 32-bit
        // fields); one result edge = 4 bytes (EdgeId).
        double vct_bytes = agg.avg_vct_size * sizeof(VctEntry);
        double vct_deg_bytes = vct_bytes * prepared->stats.avg_degree;
        double result_bytes = agg.avg_result_size_edges * sizeof(EdgeId);
        return {{name, TextTable::CellSci(vct_bytes),
                 TextTable::CellSci(vct_deg_bytes),
                 TextTable::CellSci(result_bytes),
                 TextTable::Cell(result_bytes / vct_deg_bytes, 1)}};
      },
      config.parallel_datasets);
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
  std::printf(
      "\nExpected shape (paper): |R| exceeds |VCT|*deg_avg by 2-4 orders of "
      "magnitude on every dataset.\n");
  return 0;
}
