// Reproduces Table III: statistics of the fourteen benchmark datasets.
// Ours are synthetic stand-ins (DESIGN.md §3), so absolute sizes are ~100x
// smaller than the paper's; the |E|/|V| and tmax/|E| regimes match.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);

  std::printf("=== Table III: datasets (synthetic stand-ins, scale %.2f) ===\n",
              config.scale);
  TextTable table;
  table.SetHeader({"Name", "|V|", "|E|", "tmax", "kmax", "avg_deg",
                   "edges/timestamp"});
  auto rows = CollectDatasetRows(
      SelectedDatasets(config),
      [&](const std::string& name) -> std::vector<TableRow> {
        auto prepared = Prepare(name, config.scale);
        if (!prepared.ok()) {
          std::fprintf(stderr, "%s: %s\n", name.c_str(),
                       prepared.status().ToString().c_str());
          return {};
        }
        const GraphStats& s = prepared->stats;
        return {{name, TextTable::Cell(s.num_vertices),
                 TextTable::Cell(s.num_edges),
                 TextTable::Cell(s.num_timestamps),
                 TextTable::Cell(uint64_t{s.kmax}),
                 TextTable::Cell(s.avg_degree, 2),
                 TextTable::Cell(static_cast<double>(s.num_edges) /
                                     static_cast<double>(s.num_timestamps),
                                 1)}};
      },
      config.parallel_datasets);
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
  return 0;
}
