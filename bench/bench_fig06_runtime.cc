// Reproduces Figure 6: average running time of OTCD, CoreTime, EnumBase
// and Enum on all fourteen datasets under default parameters (k = 30% kmax,
// range = 10% tmax). Paper shape:
//   * Enum beats OTCD by 2-4 orders of magnitude and EnumBase by 1-3;
//   * OTCD fails to finish (DNF) on several timestamp-rich datasets;
//   * CoreTime is a small fraction of Enum's total on timestamp-rich
//     datasets and a large fraction on WK/PL/YT (few timestamps).

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  // Latency figure: per-query wall time is the measurement, so datasets
  // run serially by default (faithful to the paper); --parallel-datasets=1
  // fans them out over the shared pool, with the DNF cutoff scaled by the
  // pool size so DNF keeps meaning "too slow even serially" and a printed
  // note that timings then include cross-dataset contention.
  BenchConfig config =
      ParseBenchConfig(argc, argv, /*parallel_datasets_default=*/false);

  std::printf(
      "=== Figure 6: avg running time, seconds (k=30%% kmax, range=10%% "
      "tmax, %u queries, limit %.1fs) ===\n",
      config.queries, config.limit_seconds);
  TextTable table;
  table.SetHeader(
      {"Dataset", "OTCD", "CoreTime", "EnumBase", "Enum", "Enum speedup vs OTCD"});
  const double limit =
      config.parallel_datasets
          ? config.limit_seconds * ThreadPool::Shared().num_threads()
          : config.limit_seconds;
  if (config.parallel_datasets) {
    std::printf(
        "note: datasets measured concurrently; timings include contention "
        "(drop --parallel-datasets for clean latencies)\n");
  }
  auto rows = CollectDatasetRows(
      SelectedDatasets(config),
      [&](const std::string& name) -> std::vector<TableRow> {
        auto prepared = Prepare(name, config.scale);
        if (!prepared.ok()) return {};
        std::vector<Query> queries =
            MakeQueries(*prepared, config, 0.30, 0.10);
        if (queries.empty()) {
          return {{name, "n/a", "n/a", "n/a", "n/a", "n/a"}};
        }
        AggregateOutcome otcd =
            RunAlgorithmOnQueries(AlgorithmKind::kOtcd, prepared->graph,
                                  queries, limit);
        AggregateOutcome coretime =
            RunAlgorithmOnQueries(AlgorithmKind::kCoreTime, prepared->graph,
                                  queries, limit);
        AggregateOutcome base =
            RunAlgorithmOnQueries(AlgorithmKind::kEnumBase, prepared->graph,
                                  queries, limit);
        AggregateOutcome enum_out =
            RunAlgorithmOnQueries(AlgorithmKind::kEnum, prepared->graph,
                                  queries, limit);
        std::string speedup = "n/a";
        if (otcd.completed && enum_out.completed && enum_out.avg_seconds > 0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.0fx",
                        otcd.avg_seconds / enum_out.avg_seconds);
          speedup = buf;
        } else if (!otcd.completed && enum_out.completed) {
          speedup = ">limit";
        }
        return {{name, TimeCell(otcd), TimeCell(coretime), TimeCell(base),
                 TimeCell(enum_out), speedup}};
      },
      config.parallel_datasets);
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
  std::printf(
      "\nExpected shape (paper): Enum 2-4 orders faster than OTCD; OTCD DNF "
      "on several timestamp-rich datasets; CoreTime a small share of Enum "
      "except on WK/PL/YT.\n");
  return 0;
}
