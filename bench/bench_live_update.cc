// Live-update serving benchmark (serve/snapshot.h): one synthetic graph, a
// fixed stream of edge-update batches, and an async query workload driven
// through a LiveQueryEngine at 1/2/8 threads. Reports, per thread count:
//
//   * queries_idle           — async batch throughput with no updates;
//   * queries_during_updates — the same stream submitted while ApplyUpdates
//     snapshot swaps run continuously: the ratio to idle qps is the cost
//     queries pay for concurrent rebuilds (they never block on one — every
//     batch finishes against the snapshot it pinned at submission);
//   * updates                — snapshot-rebuild throughput: edges/sec
//     through ApplyUpdates with per-swap rebuild/swap latency;
//   * small_delta_updates    — incremental-maintenance throughput: a
//     stream of small, localized deltas (a few edges between low-degree
//     sandbox vertices at existing timestamps, well under 1% of |E|)
//     where the delta-aware rebuild must reuse most k-slices by pointer
//     and maintain the dirty ones partially. Reports updates/sec plus
//     slices_reused / slices_suffix / slices_rebuilt, the slice-level
//     reuse_ratio (reused over reused+rebuilt-whole; a suffix-maintained
//     slice is not a whole rebuild) and the row-level row_reuse_ratio
//     (rows_reused / rows_total), and self-verifies that (a) reuse
//     actually happened and (b) the final incrementally-maintained index
//     is bit-identical, slice by slice, to a from-scratch build on the
//     final graph;
//   * suffix_delta_updates   — partial slice maintenance throughput: one
//     pendant-pair edge per event at the *second-to-last* existing
//     timestamp (deliberately not the last: max_time < range.end rules
//     out the whole-rebuild branch by construction, which the self-check
//     below depends on), so the dirty slices' recompute band collapses
//     to the trailing starts and nearly every VCT row carries over.
//     Self-verifies that suffix maintenance fired (no dirty slice
//     rebuilt whole), that rows were reused, and that the final index
//     *and its per-k emergence tables* are bit-identical to from-scratch
//     builds;
//   * overload (threads >= 2 only — a 1-thread pool dispatches inline, so
//     its queue cannot saturate) — open-loop deadline'd submissions
//     against a 2-slot request queue: reports shed_ratio and the p99
//     time-to-verdict, and self-verifies that submission never blocks
//     past the caller's deadline, that every batch gets exactly one
//     verdict (served / shed / expired), and that every non-explicit
//     outcome is bit-identical to its pinned version's reference.
//
// Ratios emitted into the JSON guard their zero-denominator cases
// explicitly (0.0 plus the raw counts and an incremental_swaps field
// instead of a NaN that would slip through the regression gate;
// tools/check_bench_regression.py additionally hard-fails on any
// non-finite metric).
//
// Self-verifying: every served outcome is compared bit-identically (result
// fields) against a direct RunAlgorithm reference on the exact graph
// version the engine reports having pinned, and every batch must complete
// on the version that was current when it was submitted. Any violation
// fails the run and writes "identical": false into the JSON
// (tools/check_bench_regression.py treats that as an unconditional
// failure). Output lands in BENCH_live_update.json alongside the other
// perf-tracking benches.
//
// Flags (env fallbacks TKC_<UPPER>): --vertices --edges --timestamps --seed
// --unique (queries per batch) --rounds (batches per pass) --events (update
// batches) --update-edges (edges per update batch) --reps (best-of)
// --threads=N (adds one thread count) --out. --smoke / TKC_BENCH_SMOKE=1
// shrinks everything to CI scale.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/generators.h"
#include "serve/snapshot.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tkc {
namespace {

bool SameResults(const RunOutcome& a, const RunOutcome& b) {
  return a.status.ok() == b.status.ok() && a.num_cores == b.num_cores &&
         a.result_size_edges == b.result_size_edges &&
         a.vct_size == b.vct_size && a.ecs_size == b.ecs_size;
}

}  // namespace
}  // namespace tkc

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  const bool smoke = SmokeModeRequested(flags);
  const uint32_t vertices =
      static_cast<uint32_t>(flags.GetInt("vertices", smoke ? 120 : 170));
  const uint32_t edges =
      static_cast<uint32_t>(flags.GetInt("edges", smoke ? 2600 : 5200));
  const uint32_t timestamps =
      static_cast<uint32_t>(flags.GetInt("timestamps", smoke ? 48 : 80));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint32_t unique =
      static_cast<uint32_t>(flags.GetInt("unique", smoke ? 24 : 40));
  const uint32_t rounds =
      static_cast<uint32_t>(flags.GetInt("rounds", smoke ? 6 : 10));
  const uint32_t events =
      static_cast<uint32_t>(flags.GetInt("events", smoke ? 4 : 6));
  const uint32_t update_edges =
      static_cast<uint32_t>(flags.GetInt("update-edges", smoke ? 40 : 80));
  const int reps = static_cast<int>(flags.GetInt("reps", smoke ? 1 : 3));
  const std::string out_path =
      flags.GetString("out", "BENCH_live_update.json");
  // Overload phase: open-loop submission count and the per-batch deadline.
  const double overload_deadline_seconds = 0.05;

  SyntheticSpec graph_spec;
  graph_spec.name = "live";
  graph_spec.num_vertices = vertices;
  graph_spec.num_edges = edges;
  graph_spec.num_timestamps = timestamps;
  graph_spec.burstiness = 0.3;
  graph_spec.seed = seed;
  TemporalGraph base = GenerateSynthetic(graph_spec);

  // Sandbox pendants for the small-delta phase: kSandbox extra vertices,
  // each anchored to one dense vertex at an existing raw time. Their
  // distinct degree stays tiny (anchor + one partner) no matter how many
  // small-delta events fire, so every slice above that bound must carry
  // across swaps by pointer. The suffix-delta phase gets its own pendant
  // pool — one fresh pair per event, so each event appends a
  // never-seen-before edge (dedup can't collapse it) whose endpoints keep
  // distinct degree 2.
  constexpr uint32_t kSandbox = 8;
  const uint32_t suffix_pendants = 2 * events;
  {
    std::vector<RawTemporalEdge> anchors;
    for (uint32_t i = 0; i < kSandbox + suffix_pendants; ++i) {
      anchors.push_back({vertices + i, i % vertices,
                         base.RawTimestamp(1 + (i % base.num_timestamps()))});
    }
    auto with_sandbox = base.AppendEdges(anchors);
    if (!with_sandbox.ok()) {
      std::fprintf(stderr, "sandbox: %s\n",
                   with_sandbox.status().ToString().c_str());
      return 1;
    }
    base = std::move(with_sandbox->graph);
  }
  GraphStats stats = ComputeGraphStats(base);

  // Fixed update stream (same for every thread count / phase): uniform
  // edges over the existing vertex pool, raw times across and past the
  // current span so swaps shift compaction like a real ingest would.
  Rng rng(seed * 7919);
  std::vector<std::vector<RawTemporalEdge>> update_stream(events);
  for (auto& batch : update_stream) {
    for (uint32_t i = 0; i < update_edges; ++i) {
      RawTemporalEdge e;
      e.u = static_cast<VertexId>(rng.NextBounded(vertices));
      e.v = static_cast<VertexId>(rng.NextBounded(vertices));
      e.raw_time = rng.NextInRange(1, timestamps + timestamps / 4 + 1);
      batch.push_back(e);
    }
  }

  // Small-delta stream: per event, four sandbox-pair edges at one existing
  // raw timestamp (distinct per event, so dedup never collapses them).
  // Each sandbox vertex only ever sees its anchor and its fixed partner:
  // distinct degree 2, so the delta's max_core_bound is 2 every event and
  // every slice with k > 2 must be reused.
  const uint32_t delta_events = events;
  std::vector<std::vector<RawTemporalEdge>> small_delta_stream(delta_events);
  for (uint32_t e = 0; e < delta_events; ++e) {
    const uint64_t raw =
        base.RawTimestamp(1 + (e * 5) % base.num_timestamps());
    for (uint32_t i = 0; i < kSandbox / 2; ++i) {
      small_delta_stream[e].push_back(
          {vertices + i, vertices + kSandbox / 2 + i, raw});
    }
  }

  // Suffix-delta stream: per event, ONE pendant-pair edge at the
  // second-to-last existing raw timestamp. The delta's time extent sits at
  // the very end of the timeline, so every core time below it is provably
  // pinned and the dirty slices (k <= 2) must be maintained by recomputing
  // only the trailing start band — never rebuilt whole (a whole rebuild
  // needs the extent to touch the final timestamp *and* a band opening at
  // the first start, which this stream rules out by construction).
  const uint64_t late_raw =
      base.RawTimestamp(std::max<Timestamp>(1, base.num_timestamps() - 1));
  std::vector<std::vector<RawTemporalEdge>> suffix_delta_stream(delta_events);
  for (uint32_t e = 0; e < delta_events; ++e) {
    suffix_delta_stream[e].push_back(
        {vertices + kSandbox + 2 * e, vertices + kSandbox + 2 * e + 1,
         late_raw});
  }

  // The version chain every phase's results are verified against.
  std::vector<TemporalGraph> chain;
  chain.push_back(base);
  for (const auto& batch : update_stream) {
    auto next = chain.back().AppendEdges(batch);
    if (!next.ok()) {
      std::fprintf(stderr, "chain: %s\n", next.status().ToString().c_str());
      return 1;
    }
    chain.push_back(std::move(next->graph));
  }

  std::vector<Query> queries;
  {
    WorkloadSpec spec;
    spec.k_fraction = 0.30;
    spec.range_fraction = 0.10;
    spec.num_queries = unique;
    spec.seed = seed;
    auto generated = GenerateQueries(base, stats.kmax, spec);
    if (!generated.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    queries = std::move(generated).value();
  }

  // Per-(version, query) references, computed on demand: the engine's
  // algorithm (Enum) run directly on the chain graph.
  std::map<std::pair<uint64_t, size_t>, RunOutcome> references;
  auto reference_of = [&](uint64_t version, size_t qi) -> const RunOutcome& {
    auto key = std::make_pair(version, qi);
    auto it = references.find(key);
    if (it == references.end()) {
      it = references
               .emplace(key, RunAlgorithm(AlgorithmKind::kEnum,
                                          chain[version], queries[qi]))
               .first;
    }
    return it->second;
  };

  std::printf(
      "=== Live update: %u vertices, %u edges, %u timestamps, kmax=%u; %zu "
      "queries x%u rounds, %u update batches x%u edges, best of %d ===\n",
      vertices, edges, timestamps, stats.kmax, queries.size(), rounds, events,
      update_edges, reps);

  std::vector<int> thread_counts = {1, 2, 8};
  if (flags.Has("threads")) {
    thread_counts.push_back(
        std::max(1, static_cast<int>(flags.GetInt("threads", 1))));
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  TextTable table;
  table.SetHeader({"Threads", "idle q/s", "live q/s", "live/idle",
                   "updates/s", "rebuild s", "delta u/s", "reuse",
                   "sfx u/s", "row reuse", "shed", "p99 ms", "identical"});
  JsonRecords records;
  bool all_identical = true;
  double idle_qps_1thread = 0;
  double live_qps_1thread = 0;

  for (int threads : thread_counts) {
    ThreadPool pool(threads);
    LiveEngineOptions options;
    options.engine.pool = &pool;
    options.engine.build_index = true;
    options.engine.cache_capacity = 0;  // every round must execute

    // Awaiting completions belongs in the timed region (completion *is*
    // what the qps measures); the oracle comparison does not — it runs
    // after the timer is read, so the lazily filled reference memo (shared
    // across reps and thread counts) never skews a measurement.
    auto collect =
        [&](std::vector<std::pair<std::future<BatchResult>, uint64_t>>*
                pending) {
          std::vector<std::pair<BatchResult, uint64_t>> results;
          results.reserve(pending->size());
          for (auto& [future, version_at_submission] : *pending) {
            results.emplace_back(future.get(), version_at_submission);
          }
          pending->clear();
          return results;
        };
    auto verify = [&](const std::vector<std::pair<BatchResult, uint64_t>>&
                          results,
                      bool* identical) {
      for (const auto& [result, version_at_submission] : results) {
        // Pin consistency: a batch answers against a version no older than
        // the one current at submission (a swap may land between the
        // version read and the pin, so newer is legal) and never beyond
        // the applied stream.
        *identical = *identical &&
                     result.snapshot_version >= version_at_submission &&
                     result.snapshot_version <= update_stream.size();
        for (size_t qi = 0; qi < result.outcomes.size(); ++qi) {
          *identical =
              *identical &&
              SameResults(reference_of(result.snapshot_version, qi),
                          result.outcomes[qi]);
        }
      }
    };

    double best_idle = -1, best_live = -1, best_updates = -1;
    double best_small = -1, best_suffix = -1;
    uint64_t small_slices_reused = 0, small_slices_rebuilt = 0;
    uint64_t small_slices_suffix = 0, small_rows_reused = 0;
    uint64_t small_rows_total = 0, small_incremental_swaps = 0;
    uint64_t sfx_slices_reused = 0, sfx_slices_rebuilt = 0;
    uint64_t sfx_slices_suffix = 0, sfx_rows_reused = 0, sfx_rows_total = 0;
    uint64_t sfx_incremental_swaps = 0, sfx_emergence_carried = 0;
    double rebuild_seconds = 0, swap_seconds = 0;
    double best_overload_p99 = -1, ov_max_submit = 0;
    uint64_t ov_submitted = 0, ov_shed = 0, ov_expired = 0, ov_served = 0;
    bool identical = true;
    for (int rep = 0; rep < reps; ++rep) {
      // --- queries_idle: no swaps in flight. --------------------------
      {
        auto live = LiveQueryEngine::Create(base, options);
        if (!live.ok()) {
          std::fprintf(stderr, "engine: %s\n",
                       live.status().ToString().c_str());
          return 1;
        }
        std::vector<std::pair<std::future<BatchResult>, uint64_t>> pending;
        WallTimer timer;
        for (uint32_t r = 0; r < rounds; ++r) {
          pending.emplace_back((*live)->SubmitAsync(queries),
                               (*live)->version());
        }
        auto results = collect(&pending);
        double seconds = timer.ElapsedSeconds();
        verify(results, &identical);
        if (best_idle < 0 || seconds < best_idle) best_idle = seconds;
      }

      // --- queries_during_updates: swaps run underneath. --------------
      {
        auto live = LiveQueryEngine::Create(base, options);
        if (!live.ok()) return 1;
        std::vector<std::future<Status>> swaps;
        std::vector<std::pair<std::future<BatchResult>, uint64_t>> pending;
        WallTimer timer;
        size_t next_event = 0;
        const uint32_t per_event =
            std::max(1u, rounds / std::max(1u, events));
        for (uint32_t r = 0; r < rounds; ++r) {
          pending.emplace_back((*live)->SubmitAsync(queries),
                               (*live)->version());
          if ((r + 1) % per_event == 0 &&
              next_event < update_stream.size()) {
            swaps.push_back(
                (*live)->ApplyUpdates(update_stream[next_event]));
            ++next_event;
          }
        }
        auto results = collect(&pending);
        double seconds = timer.ElapsedSeconds();  // queries only: swaps may
                                                  // still be running
        verify(results, &identical);
        if (best_live < 0 || seconds < best_live) best_live = seconds;
        while (next_event < update_stream.size()) {
          swaps.push_back((*live)->ApplyUpdates(update_stream[next_event]));
          ++next_event;
        }
        for (auto& swap : swaps) identical = identical && swap.get().ok();
        identical = identical && (*live)->version() == update_stream.size();
      }

      // --- updates: serial swap throughput. ---------------------------
      {
        auto live = LiveQueryEngine::Create(base, options);
        if (!live.ok()) return 1;
        WallTimer timer;
        for (const auto& batch : update_stream) {
          identical = identical && (*live)->ApplyUpdates(batch).get().ok();
        }
        double seconds = timer.ElapsedSeconds();
        if (best_updates < 0 || seconds < best_updates) {
          best_updates = seconds;
          LiveStats live_stats = (*live)->stats();
          rebuild_seconds = live_stats.last_rebuild_seconds;
          swap_seconds = live_stats.last_swap_seconds;
        }
      }

      // --- small_delta_updates: incremental-maintenance throughput. ---
      {
        auto live = LiveQueryEngine::Create(base, options);
        if (!live.ok()) return 1;
        WallTimer timer;
        for (const auto& batch : small_delta_stream) {
          identical = identical && (*live)->ApplyUpdates(batch).get().ok();
        }
        double seconds = timer.ElapsedSeconds();
        const UpdateStats ustats = (*live)->update_stats();
        // Reuse must actually happen: a small localized delta rebuilds
        // strictly fewer slices than max_k every swap.
        identical = identical && ustats.slices_reused > 0 &&
                    ustats.incremental_swaps == (*live)->stats().swaps;
        // And the incrementally maintained index must be bit-identical to
        // a from-scratch build on the final graph.
        auto snap = (*live)->snapshot();
        const PhcIndex* incremental = snap->engine().index();
        PhcBuildOptions fresh_opts;
        fresh_opts.pool = &pool;
        auto fresh = PhcIndex::Build(snap->graph(),
                                     snap->graph().FullRange(), fresh_opts);
        identical = identical && fresh.ok() && incremental != nullptr &&
                    *incremental == *fresh;
        if (best_small < 0 || seconds < best_small) {
          best_small = seconds;
          small_slices_reused = ustats.slices_reused;
          small_slices_rebuilt = ustats.slices_rebuilt;
          small_slices_suffix = ustats.suffix_rebuilds;
          small_rows_reused = ustats.rows_reused;
          small_rows_total = ustats.rows_total;
          small_incremental_swaps = ustats.incremental_swaps;
        }
      }

      // --- suffix_delta_updates: partial slice maintenance. ------------
      {
        auto live = LiveQueryEngine::Create(base, options);
        if (!live.ok()) return 1;
        WallTimer timer;
        for (const auto& batch : suffix_delta_stream) {
          identical = identical && (*live)->ApplyUpdates(batch).get().ok();
        }
        double seconds = timer.ElapsedSeconds();
        const UpdateStats ustats = (*live)->update_stats();
        // Partial maintenance must actually fire: end-of-timeline pendant
        // deltas leave no dirty slice to rebuild whole, and the trailing
        // band is tiny so rows genuinely carry.
        identical = identical && ustats.suffix_rebuilds > 0 &&
                    ustats.slices_rebuilt == 0 && ustats.rows_reused > 0 &&
                    ustats.incremental_swaps == (*live)->stats().swaps;
        // The maintained index — suffix-stitched slices, pointer-reused
        // slices, carried emergence tables — must be bit-identical to
        // from-scratch state on the final graph.
        auto snap = (*live)->snapshot();
        const PhcIndex* incremental = snap->engine().index();
        PhcBuildOptions fresh_opts;
        fresh_opts.pool = &pool;
        auto fresh = PhcIndex::Build(snap->graph(),
                                     snap->graph().FullRange(), fresh_opts);
        identical = identical && fresh.ok() && incremental != nullptr &&
                    *incremental == *fresh;
        if (fresh.ok() && incremental != nullptr) {
          for (uint32_t k = 1; k <= fresh->max_k(); ++k) {
            const std::vector<Timestamp> expected =
                QueryEngine::ComputeEmergenceTable(fresh->Slice(k));
            const std::span<const Timestamp> table =
                snap->engine().EmergenceTable(k);
            identical = identical &&
                        std::equal(table.begin(), table.end(),
                                   expected.begin(), expected.end());
          }
        }
        if (best_suffix < 0 || seconds < best_suffix) {
          best_suffix = seconds;
          sfx_slices_reused = ustats.slices_reused;
          sfx_slices_rebuilt = ustats.slices_rebuilt;
          sfx_slices_suffix = ustats.suffix_rebuilds;
          sfx_rows_reused = ustats.rows_reused;
          sfx_rows_total = ustats.rows_total;
          sfx_incremental_swaps = ustats.incremental_swaps;
          sfx_emergence_carried = ustats.emergence_tables_carried;
        }
      }

      // --- overload: open-loop deadline'd submissions, tiny queue. ------
      if (threads >= 2) {
        LiveEngineOptions overload_options = options;
        overload_options.engine.async_queue_capacity = 2;
        auto live = LiveQueryEngine::Create(base, overload_options);
        if (!live.ok()) return 1;
        const uint32_t submissions = rounds * 4;
        // Sized so Deliver never blocks: the consumer below is for
        // timestamping, not backpressure.
        BatchCompletionQueue cq(submissions + 1);
        std::vector<double> submit_at(submissions, -1.0);
        std::vector<double> verdict_at(submissions, -1.0);
        std::vector<BatchResult> delivered(submissions);
        WallTimer timer;
        std::thread consumer([&] {
          for (uint32_t i = 0; i < submissions; ++i) {
            BatchResult result;
            if (!cq.Next(&result)) break;
            verdict_at[result.tag] = timer.ElapsedSeconds();
            delivered[result.tag] = std::move(result);
          }
        });
        double max_submit = 0;
        for (uint32_t i = 0; i < submissions; ++i) {
          submit_at[i] = timer.ElapsedSeconds();
          (*live)->SubmitAsync(
              queries, &cq, i,
              Deadline::AfterSeconds(overload_deadline_seconds));
          max_submit =
              std::max(max_submit, timer.ElapsedSeconds() - submit_at[i]);
        }
        consumer.join();  // every batch delivers exactly one verdict

        uint64_t shed = 0, expired = 0, served = 0;
        bool all_delivered = true;
        std::vector<double> verdicts;
        verdicts.reserve(submissions);
        for (uint32_t i = 0; i < submissions; ++i) {
          if (verdict_at[i] < 0) {
            all_delivered = false;
            continue;
          }
          verdicts.push_back(verdict_at[i] - submit_at[i]);
          const BatchResult& result = delivered[i];
          bool any_real = false, any_shed = false;
          for (size_t qi = 0; qi < result.outcomes.size(); ++qi) {
            const StatusCode code = result.outcomes[qi].status.code();
            if (code == StatusCode::kResourceExhausted) {
              any_shed = true;
              continue;
            }
            if (code == StatusCode::kTimeout) continue;
            any_real = true;
            // No updates run in this phase, so every real answer pins
            // version 0 and must match the base-graph reference.
            identical = identical &&
                        SameResults(reference_of(result.snapshot_version, qi),
                                    result.outcomes[qi]);
          }
          if (any_real) {
            ++served;
          } else if (any_shed) {
            ++shed;
          } else {
            ++expired;
          }
        }
        identical = identical && all_delivered;
        // The shed policy's core guarantee: a saturated queue answers
        // within the caller's deadline instead of blocking on capacity.
        identical = identical && max_submit <= overload_deadline_seconds;
        identical = identical && shed + expired + served == submissions;
        std::sort(verdicts.begin(), verdicts.end());
        const double p99 =
            verdicts.empty()
                ? 0.0
                : verdicts[static_cast<size_t>(0.99 * (verdicts.size() - 1) +
                                               0.5)];
        if (best_overload_p99 < 0 || p99 < best_overload_p99) {
          best_overload_p99 = p99;
          ov_submitted = submissions;
          ov_shed = shed;
          ov_expired = expired;
          ov_served = served;
        }
        ov_max_submit = std::max(ov_max_submit, max_submit);
      }
    }
    all_identical = all_identical && identical;

    const double stream = static_cast<double>(queries.size()) * rounds;
    double idle_qps = best_idle > 0 ? stream / best_idle : 0;
    double live_qps = best_live > 0 ? stream / best_live : 0;
    double updates_per_sec =
        best_updates > 0 ? static_cast<double>(events) / best_updates : 0;
    double edges_per_sec =
        best_updates > 0
            ? static_cast<double>(events) * update_edges / best_updates
            : 0;
    double small_updates_per_sec =
        best_small > 0 ? static_cast<double>(delta_events) / best_small : 0;
    double suffix_updates_per_sec =
        best_suffix > 0 ? static_cast<double>(delta_events) / best_suffix : 0;
    // Every ratio below guards its zero-denominator case explicitly (no
    // incremental swaps => 0.0, never NaN — a NaN here would slip through
    // the CI regression gate's comparisons). The raw counts and
    // incremental_swaps land in the JSON alongside, so a zero ratio is
    // always diagnosable.
    auto safe_ratio = [](uint64_t num, uint64_t den) {
      return den > 0 ? static_cast<double>(num) / static_cast<double>(den)
                     : 0.0;
    };
    // Slice-level reuse: shares carried whole over slices that needed any
    // whole rebuild. Suffix-maintained slices are neither: they are
    // tracked by the row-level ratio instead.
    double reuse_ratio = safe_ratio(small_slices_reused,
                                    small_slices_reused + small_slices_rebuilt);
    double small_row_reuse = safe_ratio(small_rows_reused, small_rows_total);
    double suffix_reuse_ratio =
        safe_ratio(sfx_slices_reused, sfx_slices_reused + sfx_slices_rebuilt);
    double suffix_row_reuse = safe_ratio(sfx_rows_reused, sfx_rows_total);
    if (threads == 1) {
      idle_qps_1thread = idle_qps;
      live_qps_1thread = live_qps;
    }
    double idle_speedup = idle_qps_1thread > 0 ? idle_qps / idle_qps_1thread
                                               : 0;
    double live_speedup = live_qps_1thread > 0 ? live_qps / live_qps_1thread
                                               : 0;
    double overlap_ratio = idle_qps > 0 ? live_qps / idle_qps : 0;

    const double shed_ratio = safe_ratio(ov_shed, ov_submitted);
    const double expired_ratio = safe_ratio(ov_expired, ov_submitted);

    char ratio_cell[32];
    std::snprintf(ratio_cell, sizeof(ratio_cell), "%.2f", overlap_ratio);
    char reuse_cell[32];
    std::snprintf(reuse_cell, sizeof(reuse_cell), "%.2f", reuse_ratio);
    char row_reuse_cell[32];
    std::snprintf(row_reuse_cell, sizeof(row_reuse_cell), "%.3f",
                  suffix_row_reuse);
    char shed_cell[32];
    char p99_cell[32];
    if (best_overload_p99 >= 0) {
      std::snprintf(shed_cell, sizeof(shed_cell), "%.2f", shed_ratio);
      std::snprintf(p99_cell, sizeof(p99_cell), "%.1f",
                    best_overload_p99 * 1000.0);
    } else {
      std::strcpy(shed_cell, "-");
      std::strcpy(p99_cell, "-");
    }
    table.AddRow({TextTable::Cell(static_cast<uint64_t>(threads)),
                  TextTable::Cell(idle_qps, 1), TextTable::Cell(live_qps, 1),
                  ratio_cell, TextTable::Cell(updates_per_sec, 2),
                  TextTable::Cell(rebuild_seconds, 4),
                  TextTable::Cell(small_updates_per_sec, 2), reuse_cell,
                  TextTable::Cell(suffix_updates_per_sec, 2), row_reuse_cell,
                  shed_cell, p99_cell, identical ? "yes" : "NO"});

    for (int mode = 0; mode < 6; ++mode) {
      // The overload phase needs real pool workers (inline dispatch cannot
      // saturate a queue): no record at 1 thread, so the regression gate's
      // baseline never carries one either.
      if (mode == 5 && best_overload_p99 < 0) continue;
      records.BeginRecord();
      records.Add("bench", std::string("live_update"));
      records.Add("mode", std::string(mode == 0   ? "queries_idle"
                                      : mode == 1 ? "queries_during_updates"
                                      : mode == 2 ? "updates"
                                      : mode == 3 ? "small_delta_updates"
                                      : mode == 4 ? "suffix_delta_updates"
                                                  : "overload"));
      records.Add("vertices", static_cast<uint64_t>(vertices));
      records.Add("edges", static_cast<uint64_t>(edges));
      records.Add("timestamps", static_cast<uint64_t>(timestamps));
      records.Add("unique_queries", static_cast<uint64_t>(queries.size()));
      records.Add("rounds", static_cast<uint64_t>(rounds));
      records.Add("update_batches", static_cast<uint64_t>(events));
      records.Add("update_edges", static_cast<uint64_t>(update_edges));
      records.Add("threads", threads);
      if (mode == 0) {
        records.Add("seconds", best_idle);
        records.Add("qps", idle_qps);
        records.Add("speedup", idle_speedup);
      } else if (mode == 1) {
        records.Add("seconds", best_live);
        records.Add("qps", live_qps);
        records.Add("speedup", live_speedup);
        records.Add("overlap_ratio", overlap_ratio);
      } else if (mode == 2) {
        records.Add("seconds", best_updates);
        records.Add("updates_per_sec", updates_per_sec);
        records.Add("edges_per_sec", edges_per_sec);
        records.Add("rebuild_seconds", rebuild_seconds);
        records.Add("swap_seconds", swap_seconds);
      } else if (mode == 3) {
        records.Add("seconds", best_small);
        records.Add("updates_per_sec", small_updates_per_sec);
        records.Add("delta_events", static_cast<uint64_t>(delta_events));
        records.Add("slices_reused", small_slices_reused);
        records.Add("slices_suffix", small_slices_suffix);
        records.Add("slices_rebuilt", small_slices_rebuilt);
        records.Add("incremental_swaps", small_incremental_swaps);
        records.Add("reuse_ratio", reuse_ratio);
        records.Add("rows_reused", small_rows_reused);
        records.Add("rows_total", small_rows_total);
        records.Add("row_reuse_ratio", small_row_reuse);
      } else if (mode == 4) {
        records.Add("seconds", best_suffix);
        records.Add("updates_per_sec", suffix_updates_per_sec);
        records.Add("delta_events", static_cast<uint64_t>(delta_events));
        records.Add("slices_reused", sfx_slices_reused);
        records.Add("slices_suffix", sfx_slices_suffix);
        records.Add("slices_rebuilt", sfx_slices_rebuilt);
        records.Add("incremental_swaps", sfx_incremental_swaps);
        records.Add("reuse_ratio", suffix_reuse_ratio);
        records.Add("rows_reused", sfx_rows_reused);
        records.Add("rows_total", sfx_rows_total);
        records.Add("row_reuse_ratio", suffix_row_reuse);
        records.Add("emergence_tables_carried", sfx_emergence_carried);
      } else {
        records.Add("submissions", ov_submitted);
        records.Add("deadline_ms", overload_deadline_seconds * 1000.0);
        records.Add("batches_served", ov_served);
        records.Add("batches_shed", ov_shed);
        records.Add("batches_expired", ov_expired);
        records.Add("shed_ratio", shed_ratio);
        records.Add("expired_ratio", expired_ratio);
        records.Add("deadline_p99_ms", best_overload_p99 * 1000.0);
        records.Add("max_submit_ms", ov_max_submit * 1000.0);
      }
      records.Add("identical", identical);
    }
  }
  table.Print();
  if (records.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "ERROR: a live-served outcome differed from its pinned "
                 "version's reference (or a pin/swap was inconsistent)\n");
    return 1;
  }
  return 0;
}
