// Reproduces Figure 10: the average number of temporal k-cores as k varies
// over 10/20/30/40% of kmax on the sweep datasets. Paper shape: counts
// fall with k — by 3-4 orders of magnitude on CM/EM, ~2 on WT/PL.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);
  if (config.datasets.empty()) config.datasets = SweepDatasetNames();
  const double kFractions[] = {0.10, 0.20, 0.30, 0.40};

  std::printf(
      "=== Figure 10: avg number of cores vs k (range=10%% tmax, %u "
      "queries) ===\n",
      config.queries);
  // Datasets render their sections concurrently over the shared pool; the
  // inner batch calls nest and run inline on the claiming worker.
  PrintDatasetSections(config.datasets, [&](const std::string& name) {
    auto prepared = Prepare(name, config.scale);
    if (!prepared.ok()) return std::string();
    char heading[128];
    std::snprintf(heading, sizeof(heading), "\n--- %s (kmax=%u) ---\n",
                  name.c_str(), prepared->stats.kmax);
    TextTable table;
    table.SetHeader({"k", "num_cores", "|R| (edges)"});
    for (double kf : kFractions) {
      std::vector<Query> queries = MakeQueries(*prepared, config, kf, 0.10);
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f%% (k=%u)", kf * 100,
                    queries.empty() ? 0 : queries[0].k);
      if (queries.empty()) {
        table.AddRow({label, "n/a", "n/a"});
        continue;
      }
      // Count figure: timing-insensitive; the DNF cutoff is scaled by the
      // pool size to absorb cross-dataset contention.
      ThreadPool& pool = ThreadPool::Shared();
      AggregateOutcome agg = RunAlgorithmOnQueries(
          AlgorithmKind::kEnum, prepared->graph, queries,
          config.limit_seconds * pool.num_threads(), &pool);
      table.AddRow({label,
                    agg.completed ? TextTable::CellSci(agg.avg_num_cores)
                                  : "DNF",
                    agg.completed
                        ? TextTable::CellSci(agg.avg_result_size_edges)
                        : "DNF"});
    }
    return heading + table.ToString();
  }, config.parallel_datasets);
  std::printf(
      "\nExpected shape (paper): counts fall with k — steeply on CM/EM, "
      "more gently on WT/PL.\n");
  return 0;
}
