// Serial vs. parallel PHC index construction. Builds the full k = 1..kmax
// index of a generator dataset once per thread count, verifies every
// parallel result is bit-identical to the serial reference, and reports
// build times plus speedups — on stdout as a table and as machine-readable
// JSON (default BENCH_phc_parallel.json) so future PRs can track the perf
// trajectory.
//
// Flags (env fallbacks TKC_<UPPER>): --vertices --edges --timestamps --seed
// --reps (best-of) --max-k --out. --threads=N adds one extra thread count
// to the swept powers of two; the sweep always ends at DefaultNumThreads()
// (the TKC_NUM_THREADS override, else hardware concurrency).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/generators.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "vct/phc_index.h"

namespace tkc {
namespace {

bool SameIndex(const PhcIndex& a, const PhcIndex& b, VertexId num_vertices) {
  if (a.max_k() != b.max_k() || a.size() != b.size()) return false;
  for (uint32_t k = 1; k <= a.max_k(); ++k) {
    const VertexCoreTimeIndex& sa = a.Slice(k);
    const VertexCoreTimeIndex& sb = b.Slice(k);
    if (sa.size() != sb.size()) return false;
    for (VertexId v = 0; v < num_vertices; ++v) {
      auto ea = sa.EntriesOf(v), eb = sb.EntriesOf(v);
      if (ea.size() != eb.size()) return false;
      for (size_t i = 0; i < ea.size(); ++i) {
        if (!(ea[i] == eb[i])) return false;
      }
    }
  }
  return true;
}

double BestBuildSeconds(const TemporalGraph& g, const PhcBuildOptions& options,
                        int reps, StatusOr<PhcIndex>* out) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    auto index = PhcIndex::Build(g, g.FullRange(), options);
    double seconds = timer.ElapsedSeconds();
    if (best < 0 || seconds < best) best = seconds;
    if (r == 0) *out = std::move(index);
  }
  return best;
}

}  // namespace
}  // namespace tkc

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  // Smoke mode (--smoke / TKC_BENCH_SMOKE=1): shrink the workload so a CI
  // run finishes in seconds while still sweeping every thread count and
  // emitting the same JSON shape; explicit flags override.
  const bool smoke = SmokeModeRequested(flags);
  const uint32_t vertices =
      static_cast<uint32_t>(flags.GetInt("vertices", smoke ? 150 : 300));
  const uint32_t edges =
      static_cast<uint32_t>(flags.GetInt("edges", smoke ? 5000 : 15000));
  const uint32_t timestamps =
      static_cast<uint32_t>(flags.GetInt("timestamps", smoke ? 32 : 64));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int reps = static_cast<int>(flags.GetInt("reps", smoke ? 1 : 3));
  const uint32_t max_k = static_cast<uint32_t>(flags.GetInt("max-k", 0));
  const std::string out_path =
      flags.GetString("out", "BENCH_phc_parallel.json");

  TemporalGraph g = GenerateUniformRandom(vertices, edges, timestamps, seed);

  // Serial reference (no pool at all).
  PhcBuildOptions serial_options;
  serial_options.max_k = max_k;
  StatusOr<PhcIndex> reference = Status::Internal("not built");
  double serial_seconds =
      BestBuildSeconds(g, serial_options, reps, &reference);
  if (!reference.ok()) {
    std::fprintf(stderr, "serial build failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "=== PHC parallel construction: %u vertices, %u edges, %u timestamps, "
      "kmax=%u, |PHC|=%llu (best of %d) ===\n",
      vertices, edges, timestamps, reference->max_k(),
      static_cast<unsigned long long>(reference->size()), reps);
  if (reference->max_k() < 8) {
    std::printf("note: kmax < 8; raise --edges for a representative run\n");
  }

  // Thread sweep: powers of two up to the default, plus any --threads value.
  std::vector<int> thread_counts;
  const int default_threads = DefaultNumThreads();
  for (int t = 1; t < default_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(default_threads);
  if (flags.Has("threads")) {
    thread_counts.push_back(
        std::max(1, static_cast<int>(flags.GetInt("threads", 1))));
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  TextTable table;
  table.SetHeader({"Threads", "Build (s)", "Speedup", "Identical"});
  table.AddRow({"serial", TextTable::Cell(serial_seconds), "1.00x", "ref"});

  JsonRecords records;
  records.BeginRecord();
  records.Add("bench", std::string("phc_parallel"));
  records.Add("mode", std::string("serial"));
  records.Add("vertices", static_cast<uint64_t>(vertices));
  records.Add("edges", static_cast<uint64_t>(edges));
  records.Add("timestamps", static_cast<uint64_t>(timestamps));
  records.Add("kmax", static_cast<uint64_t>(reference->max_k()));
  records.Add("index_entries", reference->size());
  records.Add("threads", 1);
  records.Add("seconds", serial_seconds);
  records.Add("speedup", 1.0);
  records.Add("identical", true);

  bool all_identical = true;
  for (int threads : thread_counts) {
    ThreadPool pool(threads);
    PhcBuildOptions options;
    options.max_k = max_k;
    options.pool = &pool;
    StatusOr<PhcIndex> parallel = Status::Internal("not built");
    double seconds = BestBuildSeconds(g, options, reps, &parallel);
    bool identical =
        parallel.ok() && SameIndex(*reference, *parallel, g.num_vertices());
    all_identical = all_identical && identical;
    double speedup = seconds > 0 ? serial_seconds / seconds : 0;
    char speedup_cell[32];
    std::snprintf(speedup_cell, sizeof(speedup_cell), "%.2fx", speedup);
    table.AddRow({TextTable::Cell(static_cast<uint64_t>(threads)),
                  TextTable::Cell(seconds), speedup_cell,
                  identical ? "yes" : "NO"});
    records.BeginRecord();
    records.Add("bench", std::string("phc_parallel"));
    records.Add("mode", std::string("pool"));
    records.Add("threads", threads);
    records.Add("seconds", seconds);
    records.Add("speedup", speedup);
    records.Add("identical", identical);
  }
  table.Print();
  if (records.WriteFile(out_path)) {
    std::printf("\nwrote %s\n", out_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr, "ERROR: a parallel index differed from serial\n");
    return 1;
  }
  return 0;
}
