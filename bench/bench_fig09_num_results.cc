// Reproduces Figure 9: the average number of distinct temporal k-cores per
// dataset under the default parameters (k = 30% kmax, range = 10% tmax).
// Paper shape: timestamp-rich datasets (SU, WT) produce the most cores;
// WK/PL/YT produce fewer despite their edge counts because tmax is small.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);

  std::printf(
      "=== Figure 9: avg number of temporal k-cores (k=30%% kmax, "
      "range=10%% tmax, %u queries) ===\n",
      config.queries);
  TextTable table;
  table.SetHeader({"Dataset", "kmax", "k", "range_len", "num_cores", "|R|"});
  for (const std::string& name : SelectedDatasets(config)) {
    auto prepared = Prepare(name, config.scale);
    if (!prepared.ok()) continue;
    std::vector<Query> queries = MakeQueries(*prepared, config, 0.30, 0.10);
    if (queries.empty()) {
      table.AddRow({name, TextTable::Cell(uint64_t{prepared->stats.kmax}),
                    "-", "-", "n/a", "n/a"});
      continue;
    }
    // Count figures are timing-insensitive, so the batch fans out over the
    // shared pool (TKC_NUM_THREADS); latency figures (6-8) stay serial.
    // Concurrent queries contend for cores, so the per-query DNF cutoff is
    // scaled by the pool size to keep DNF meaning "too slow even serially".
    ThreadPool& pool = ThreadPool::Shared();
    AggregateOutcome agg = RunAlgorithmOnQueries(
        AlgorithmKind::kEnum, prepared->graph, queries,
        config.limit_seconds * pool.num_threads(), &pool);
    table.AddRow(
        {name, TextTable::Cell(uint64_t{prepared->stats.kmax}),
         TextTable::Cell(uint64_t{queries[0].k}),
         TextTable::Cell(queries[0].range.Length()),
         agg.completed ? TextTable::CellSci(agg.avg_num_cores) : "DNF",
         agg.completed ? TextTable::CellSci(agg.avg_result_size_edges)
                       : "DNF"});
  }
  table.Print();
  return 0;
}
