// Reproduces Figure 9: the average number of distinct temporal k-cores per
// dataset under the default parameters (k = 30% kmax, range = 10% tmax).
// Paper shape: timestamp-rich datasets (SU, WT) produce the most cores;
// WK/PL/YT produce fewer despite their edge counts because tmax is small.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);

  std::printf(
      "=== Figure 9: avg number of temporal k-cores (k=30%% kmax, "
      "range=10%% tmax, %u queries) ===\n",
      config.queries);
  TextTable table;
  table.SetHeader({"Dataset", "kmax", "k", "range_len", "num_cores", "|R|"});
  auto rows = CollectDatasetRows(
      SelectedDatasets(config),
      [&](const std::string& name) -> std::vector<TableRow> {
        auto prepared = Prepare(name, config.scale);
        if (!prepared.ok()) return {};
        std::vector<Query> queries =
            MakeQueries(*prepared, config, 0.30, 0.10);
        if (queries.empty()) {
          return {{name, TextTable::Cell(uint64_t{prepared->stats.kmax}),
                   "-", "-", "n/a", "n/a"}};
        }
        // Count figures are timing-insensitive, so datasets fan out over
        // the shared pool (the inner batch call nests and runs inline);
        // latency figures (6-8) keep their per-query runs serial. Datasets
        // contend for cores, so the per-query DNF cutoff is scaled by the
        // pool size to keep DNF meaning "too slow even serially".
        ThreadPool& pool = ThreadPool::Shared();
        AggregateOutcome agg = RunAlgorithmOnQueries(
            AlgorithmKind::kEnum, prepared->graph, queries,
            config.limit_seconds * pool.num_threads(), &pool);
        return {
            {name, TextTable::Cell(uint64_t{prepared->stats.kmax}),
             TextTable::Cell(uint64_t{queries[0].k}),
             TextTable::Cell(queries[0].range.Length()),
             agg.completed ? TextTable::CellSci(agg.avg_num_cores) : "DNF",
             agg.completed ? TextTable::CellSci(agg.avg_result_size_edges)
                           : "DNF"}};
      },
      config.parallel_datasets);
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
  return 0;
}
