// Thread-scaling benchmark (the "scaling truth" tier): one synthetic graph
// and three measurements per thread count in {1, 2, 4, 8}:
//
//   * build                  — PhcIndex::Build wall time on an N-thread
//     pool (edges/sec, speedup vs the 1-thread build);
//   * queries_idle           — async batch throughput through a
//     LiveQueryEngine with no updates in flight (qps, speedup);
//   * queries_during_updates — the same stream submitted while ApplyUpdates
//     snapshot swaps run continuously on the engine's dedicated update
//     pool; the ratio to idle qps is what queries pay for concurrent
//     rebuilds.
//
// Two tiers share this binary:
//
//   * the default tier is small enough to run anywhere in seconds and is
//     how the binary itself gets exercised;
//   * --large switches to the 10^6-edge tier the scaling claims are made
//     at (tens of thousands of vertices, a million-plus temporal edges
//     from the activity-driven generator). It is deliberately NOT wired
//     into CI or the regression gate — it exists to measure scaling on
//     real multi-core hardware, where a run takes minutes, not to police
//     per-commit noise. Run it manually:
//
//       ./bench_scaling --large [--reps=3] [--out=BENCH_scaling.json]
//
// Self-verifying: per-query result summaries from the serve phases must
// agree across every thread count (the first thread count's outcomes are
// the reference), every during-update batch must complete on a version at
// least as new as the one pinned at submission, and the swap chain must
// drain completely. Violations write "identical": false into the JSON.
//
// Flags (env fallbacks TKC_<UPPER>): --vertices --edges --timestamps
// --seed --unique (queries per batch) --rounds (batches per pass)
// --events (update batches) --update-edges --reps (best-of) --threads=N
// (adds one thread count) --large --out.

#include <algorithm>
#include <cstdio>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/generators.h"
#include "serve/snapshot.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tkc {
namespace {

// The per-query summary compared across thread counts. Status text is
// excluded on purpose: only result-bearing fields decide identity.
struct OutcomeSummary {
  bool ok = false;
  uint64_t num_cores = 0;
  uint64_t result_size_edges = 0;
  uint64_t vct_size = 0;
  uint64_t ecs_size = 0;

  bool operator==(const OutcomeSummary&) const = default;
};

OutcomeSummary Summarize(const RunOutcome& outcome) {
  OutcomeSummary s;
  s.ok = outcome.status.ok();
  s.num_cores = outcome.num_cores;
  s.result_size_edges = outcome.result_size_edges;
  s.vct_size = outcome.vct_size;
  s.ecs_size = outcome.ecs_size;
  return s;
}

}  // namespace
}  // namespace tkc

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  const bool large = flags.Has("large") && flags.GetBool("large", true);
  // The default tier is sized to finish in seconds on one core; --large is
  // the million-edge tier the scaling curves are quoted at.
  const uint32_t vertices = static_cast<uint32_t>(
      flags.GetInt("vertices", large ? 40000 : 900));
  const uint32_t edges = static_cast<uint32_t>(
      flags.GetInt("edges", large ? 1200000 : 22000));
  const uint32_t timestamps = static_cast<uint32_t>(
      flags.GetInt("timestamps", large ? 4000 : 140));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint32_t unique =
      static_cast<uint32_t>(flags.GetInt("unique", large ? 24 : 16));
  const uint32_t rounds =
      static_cast<uint32_t>(flags.GetInt("rounds", large ? 6 : 4));
  const uint32_t events =
      static_cast<uint32_t>(flags.GetInt("events", large ? 4 : 3));
  const uint32_t update_edges = static_cast<uint32_t>(
      flags.GetInt("update-edges", large ? 2000 : 60));
  const int reps = static_cast<int>(flags.GetInt("reps", 1));
  const std::string out_path = flags.GetString("out", "BENCH_scaling.json");

  SyntheticSpec graph_spec;
  graph_spec.name = large ? "scaling-large" : "scaling";
  graph_spec.num_vertices = vertices;
  graph_spec.num_edges = edges;
  graph_spec.num_timestamps = timestamps;
  graph_spec.burstiness = 0.2;
  graph_spec.seed = seed;
  TemporalGraph base = GenerateSynthetic(graph_spec);
  GraphStats stats = ComputeGraphStats(base);

  // Fixed update stream, shared by every thread count: uniform edges over
  // the existing vertex pool at raw times across and past the current span.
  Rng rng(seed * 7919);
  std::vector<std::vector<RawTemporalEdge>> update_stream(events);
  for (auto& batch : update_stream) {
    for (uint32_t i = 0; i < update_edges; ++i) {
      RawTemporalEdge e;
      e.u = static_cast<VertexId>(rng.NextBounded(vertices));
      e.v = static_cast<VertexId>(rng.NextBounded(vertices));
      e.raw_time = rng.NextInRange(1, timestamps + timestamps / 4 + 1);
      batch.push_back(e);
    }
  }

  std::vector<Query> queries;
  {
    WorkloadSpec spec;
    spec.k_fraction = 0.30;
    spec.range_fraction = large ? 0.05 : 0.10;
    spec.num_queries = unique;
    spec.seed = seed;
    auto generated = GenerateQueries(base, stats.kmax, spec);
    if (!generated.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    queries = std::move(generated).value();
  }

  std::printf(
      "=== Scaling%s: %u vertices, %u edges (|E|=%llu after dedup-compact), "
      "%u timestamps, kmax=%u; %zu queries x%u rounds, %u update batches "
      "x%u edges, best of %d ===\n",
      large ? " (LARGE tier)" : "", vertices, edges,
      static_cast<unsigned long long>(base.num_edges()), timestamps,
      stats.kmax, queries.size(), rounds, events, update_edges, reps);

  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (flags.Has("threads")) {
    thread_counts.push_back(
        std::max(1, static_cast<int>(flags.GetInt("threads", 1))));
  }
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(
      std::unique(thread_counts.begin(), thread_counts.end()),
      thread_counts.end());

  TextTable table;
  table.SetHeader({"Threads", "build s", "build x", "idle q/s", "idle x",
                   "live q/s", "live x", "live/idle", "identical"});
  JsonRecords records;
  bool all_identical = true;
  double build_seconds_1thread = 0;
  double idle_qps_1thread = 0;
  double live_qps_1thread = 0;
  // Reference summaries from the first thread count's serve phase; every
  // later thread count must reproduce them query for query.
  std::vector<OutcomeSummary> reference_summaries;

  for (int threads : thread_counts) {
    ThreadPool pool(threads);
    bool identical = true;

    // --- build: from-scratch index construction on an N-thread pool. ----
    double best_build = -1;
    for (int rep = 0; rep < reps; ++rep) {
      PhcBuildOptions build_opts;
      build_opts.pool = &pool;
      WallTimer timer;
      auto index = PhcIndex::Build(base, base.FullRange(), build_opts);
      double seconds = timer.ElapsedSeconds();
      if (!index.ok()) {
        std::fprintf(stderr, "build: %s\n",
                     index.status().ToString().c_str());
        return 1;
      }
      if (best_build < 0 || seconds < best_build) best_build = seconds;
    }

    LiveEngineOptions options;
    options.engine.pool = &pool;
    options.engine.build_index = true;
    options.engine.cache_capacity = 0;  // every round must execute

    auto collect =
        [&](std::vector<std::pair<std::future<BatchResult>, uint64_t>>*
                pending) {
          std::vector<std::pair<BatchResult, uint64_t>> results;
          results.reserve(pending->size());
          for (auto& [future, version_at_submission] : *pending) {
            results.emplace_back(future.get(), version_at_submission);
          }
          pending->clear();
          return results;
        };

    // --- queries_idle: async throughput, no swaps in flight. ------------
    double best_idle = -1;
    for (int rep = 0; rep < reps; ++rep) {
      auto live = LiveQueryEngine::Create(base, options);
      if (!live.ok()) {
        std::fprintf(stderr, "engine: %s\n",
                     live.status().ToString().c_str());
        return 1;
      }
      std::vector<std::pair<std::future<BatchResult>, uint64_t>> pending;
      WallTimer timer;
      for (uint32_t r = 0; r < rounds; ++r) {
        pending.emplace_back((*live)->SubmitAsync(queries),
                             (*live)->version());
      }
      auto results = collect(&pending);
      double seconds = timer.ElapsedSeconds();
      if (best_idle < 0 || seconds < best_idle) best_idle = seconds;
      // Cross-thread-count identity: the first thread count measured
      // establishes the per-query reference; everyone else must match it.
      for (const auto& [result, version] : results) {
        identical = identical && result.snapshot_version == 0;
        if (reference_summaries.empty()) {
          for (const auto& outcome : result.outcomes) {
            reference_summaries.push_back(Summarize(outcome));
          }
        } else {
          identical =
              identical && result.outcomes.size() == reference_summaries.size();
          for (size_t qi = 0; identical && qi < result.outcomes.size(); ++qi) {
            identical = Summarize(result.outcomes[qi]) ==
                        reference_summaries[qi];
          }
        }
      }
    }

    // --- queries_during_updates: swaps run underneath. ------------------
    double best_live = -1;
    for (int rep = 0; rep < reps; ++rep) {
      auto live = LiveQueryEngine::Create(base, options);
      if (!live.ok()) return 1;
      std::vector<std::future<Status>> swaps;
      std::vector<std::pair<std::future<BatchResult>, uint64_t>> pending;
      WallTimer timer;
      size_t next_event = 0;
      const uint32_t per_event = std::max(1u, rounds / std::max(1u, events));
      for (uint32_t r = 0; r < rounds; ++r) {
        pending.emplace_back((*live)->SubmitAsync(queries),
                             (*live)->version());
        if ((r + 1) % per_event == 0 && next_event < update_stream.size()) {
          swaps.push_back((*live)->ApplyUpdates(update_stream[next_event]));
          ++next_event;
        }
      }
      auto results = collect(&pending);
      double seconds = timer.ElapsedSeconds();  // queries only: swaps may
                                                // still be running
      if (best_live < 0 || seconds < best_live) best_live = seconds;
      for (const auto& [result, version_at_submission] : results) {
        identical = identical &&
                    result.snapshot_version >= version_at_submission &&
                    result.snapshot_version <= update_stream.size();
      }
      while (next_event < update_stream.size()) {
        swaps.push_back((*live)->ApplyUpdates(update_stream[next_event]));
        ++next_event;
      }
      for (auto& swap : swaps) identical = identical && swap.get().ok();
      identical = identical && (*live)->version() == update_stream.size();
    }
    all_identical = all_identical && identical;

    const double stream = static_cast<double>(queries.size()) * rounds;
    double idle_qps = best_idle > 0 ? stream / best_idle : 0;
    double live_qps = best_live > 0 ? stream / best_live : 0;
    if (threads == thread_counts.front()) {
      build_seconds_1thread = best_build;
      idle_qps_1thread = idle_qps;
      live_qps_1thread = live_qps;
    }
    double build_speedup =
        best_build > 0 ? build_seconds_1thread / best_build : 0;
    double idle_speedup = idle_qps_1thread > 0 ? idle_qps / idle_qps_1thread
                                               : 0;
    double live_speedup = live_qps_1thread > 0 ? live_qps / live_qps_1thread
                                               : 0;
    double overlap_ratio = idle_qps > 0 ? live_qps / idle_qps : 0;

    char build_x[32], idle_x[32], live_x[32], ratio_cell[32];
    std::snprintf(build_x, sizeof(build_x), "%.2f", build_speedup);
    std::snprintf(idle_x, sizeof(idle_x), "%.2f", idle_speedup);
    std::snprintf(live_x, sizeof(live_x), "%.2f", live_speedup);
    std::snprintf(ratio_cell, sizeof(ratio_cell), "%.2f", overlap_ratio);
    table.AddRow({TextTable::Cell(static_cast<uint64_t>(threads)),
                  TextTable::Cell(best_build, 3), build_x,
                  TextTable::Cell(idle_qps, 1), idle_x,
                  TextTable::Cell(live_qps, 1), live_x, ratio_cell,
                  identical ? "yes" : "NO"});

    for (int mode = 0; mode < 3; ++mode) {
      records.BeginRecord();
      records.Add("bench", std::string("scaling"));
      records.Add("mode", std::string(mode == 0   ? "build"
                                      : mode == 1 ? "queries_idle"
                                                  : "queries_during_updates"));
      records.Add("large", large);
      records.Add("vertices", static_cast<uint64_t>(vertices));
      records.Add("edges", static_cast<uint64_t>(edges));
      records.Add("compacted_edges", static_cast<uint64_t>(base.num_edges()));
      records.Add("timestamps", static_cast<uint64_t>(timestamps));
      records.Add("kmax", static_cast<uint64_t>(stats.kmax));
      records.Add("unique_queries", static_cast<uint64_t>(queries.size()));
      records.Add("rounds", static_cast<uint64_t>(rounds));
      records.Add("update_batches", static_cast<uint64_t>(events));
      records.Add("update_edges", static_cast<uint64_t>(update_edges));
      records.Add("threads", threads);
      if (mode == 0) {
        records.Add("seconds", best_build);
        records.Add(
            "edges_per_sec",
            best_build > 0
                ? static_cast<double>(base.num_edges()) / best_build
                : 0.0);
        records.Add("speedup", build_speedup);
      } else if (mode == 1) {
        records.Add("seconds", best_idle);
        records.Add("qps", idle_qps);
        records.Add("speedup", idle_speedup);
      } else {
        records.Add("seconds", best_live);
        records.Add("qps", live_qps);
        records.Add("speedup", live_speedup);
        records.Add("overlap_ratio", overlap_ratio);
      }
      records.Add("identical", identical);
    }
  }
  table.Print();
  if (records.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "ERROR: serve results diverged across thread counts, a "
                 "batch answered against a stale pin, or a swap failed\n");
    return 1;
  }
  return 0;
}
