// Ablation study for the design choices DESIGN.md calls out, at the
// figure level (dataset workloads rather than microbenchmarks):
//
//   A1. CoreTime builder: worklist-fixpoint advance (O(|VCT|*deg_avg)) vs
//       one decremental sweep per start time (O(tmax*m)). The gap is the
//       contribution of the PHC-style maintenance, and it widens with the
//       number of distinct timestamps in the query range.
//   A2. EnumBase dedup policy: storing full cores (paper-faithful) vs
//       128-bit fingerprints — isolates how much of EnumBase's cost is the
//       duplicate bookkeeping itself.
//   A3. OTCD cross-row pruning on/off — the value of the PoU/PoL marks
//       beyond the PoR row jump.

#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "core/enum_base.h"
#include "core/sinks.h"
#include "otcd/otcd.h"
#include "util/timer.h"
#include "vct/naive_vct_builder.h"
#include "vct/vct_builder.h"

namespace {

using namespace tkc;
using namespace tkc::bench;

std::string Timed(double limit_seconds, double* out_seconds,
                  const std::function<bool(const Deadline&)>& fn) {
  Deadline deadline = limit_seconds > 0
                          ? Deadline::AfterSeconds(limit_seconds)
                          : Deadline();
  WallTimer timer;
  bool ok = fn(deadline);
  *out_seconds = timer.ElapsedSeconds();
  if (!ok) return "DNF";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", *out_seconds);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv);
  if (config.datasets.empty()) config.datasets = {"CM", "EM", "EN", "PL"};

  std::printf("=== Ablations (k=30%% kmax, range=10%% tmax, %u queries, "
              "limit %.1fs) ===\n",
              config.queries, config.limit_seconds);
  for (const std::string& name : config.datasets) {
    auto prepared = Prepare(name, config.scale);
    if (!prepared.ok()) continue;
    std::vector<Query> queries = MakeQueries(*prepared, config, 0.30, 0.10);
    if (queries.empty()) {
      std::printf("\n--- %s: no valid queries ---\n", name.c_str());
      continue;
    }
    const TemporalGraph& g = prepared->graph;
    std::printf("\n--- %s ---\n", name.c_str());
    TextTable table;
    table.SetHeader({"variant", "avg time (s)", "vs default"});
    double base_time = 0;

    // A1: CoreTime builders.
    double fixpoint_s = 0, sweep_s = 0;
    std::string fixpoint_cell = Timed(
        config.limit_seconds, &fixpoint_s, [&](const Deadline& d) {
          for (const Query& q : queries) {
            if (d.Expired()) return false;
            VctBuildResult r = BuildVctAndEcs(g, q.k, q.range);
            (void)r;
          }
          return true;
        });
    std::string sweep_cell = Timed(
        config.limit_seconds, &sweep_s, [&](const Deadline& d) {
          for (const Query& q : queries) {
            if (d.Expired()) return false;
            VctBuildResult r = BuildVctAndEcsNaive(g, q.k, q.range);
            (void)r;
          }
          return true;
        });
    table.AddRow({"CoreTime: fixpoint advance (default)", fixpoint_cell,
                  "1.0x"});
    char ratio[32];
    if (fixpoint_cell != "DNF" && sweep_cell != "DNF" && fixpoint_s > 0) {
      std::snprintf(ratio, sizeof(ratio), "%.1fx slower",
                    sweep_s / fixpoint_s);
    } else {
      std::snprintf(ratio, sizeof(ratio), "-");
    }
    table.AddRow({"CoreTime: per-start sweeps", sweep_cell, ratio});

    // A2: EnumBase dedup policies (shared skyline built once).
    VctBuildResult built = BuildVctAndEcs(g, queries[0].k, queries[0].range);
    double full_s = 0, fp_s = 0;
    std::string full_cell = Timed(
        config.limit_seconds, &full_s, [&](const Deadline& d) {
          CountingSink sink;
          return EnumerateFromEcsBase(g, built.ecs, &sink,
                                      EnumBaseDedup::kStoreFullCores, nullptr,
                                      d)
              .ok();
        });
    std::string fp_cell = Timed(
        config.limit_seconds, &fp_s, [&](const Deadline& d) {
          CountingSink sink;
          return EnumerateFromEcsBase(g, built.ecs, &sink,
                                      EnumBaseDedup::kFingerprintOnly,
                                      nullptr, d)
              .ok();
        });
    base_time = full_s;
    table.AddRow({"EnumBase: store full cores (paper)", full_cell, "1.0x"});
    if (full_cell != "DNF" && fp_cell != "DNF" && fp_s > 0) {
      std::snprintf(ratio, sizeof(ratio), "%.1fx faster", base_time / fp_s);
    } else {
      std::snprintf(ratio, sizeof(ratio), "-");
    }
    table.AddRow({"EnumBase: fingerprint dedup", fp_cell, ratio});

    // A3: OTCD pruning.
    double prune_s = 0, noprune_s = 0;
    std::string prune_cell = Timed(
        config.limit_seconds, &prune_s, [&](const Deadline& d) {
          for (const Query& q : queries) {
            CountingSink sink;
            OtcdOptions options;
            options.deadline = d;
            if (!RunOtcd(g, q.k, q.range, &sink, options).ok()) return false;
          }
          return true;
        });
    std::string noprune_cell = Timed(
        config.limit_seconds, &noprune_s, [&](const Deadline& d) {
          for (const Query& q : queries) {
            CountingSink sink;
            OtcdOptions options;
            options.deadline = d;
            options.cross_row_pruning = false;
            if (!RunOtcd(g, q.k, q.range, &sink, options).ok()) return false;
          }
          return true;
        });
    table.AddRow({"OTCD: cross-row pruning (default)", prune_cell, "1.0x"});
    if (prune_cell != "DNF" && noprune_cell != "DNF" && prune_s > 0) {
      std::snprintf(ratio, sizeof(ratio), "%.1fx slower",
                    noprune_s / prune_s);
    } else {
      std::snprintf(ratio, sizeof(ratio), "-");
    }
    table.AddRow({"OTCD: no cross-row pruning", noprune_cell, ratio});
    table.Print();
  }
  return 0;
}
