// Reproduces Figure 8: average running time as the query time range varies
// over 5/10/20/40% of tmax on the four sweep datasets. Paper shape: time
// rises steeply (2-3 orders of magnitude from 5% to 40%) because the
// result set grows; OTCD hits the limit earliest.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  // Latency figure: datasets run serially by default so per-query timings
  // stay faithful; --parallel-datasets=1 opts into the pool fan-out.
  BenchConfig config =
      ParseBenchConfig(argc, argv, /*parallel_datasets_default=*/false);
  if (config.datasets.empty()) config.datasets = SweepDatasetNames();
  const double kRangeFractions[] = {0.05, 0.10, 0.20, 0.40};

  std::printf(
      "=== Figure 8: avg running time vs time range (k=30%% kmax, %u "
      "queries, limit %.1fs) ===\n",
      config.queries, config.limit_seconds);
  // When datasets fan out, they contend for cores: the DNF cutoff is
  // scaled by the pool size and a note marks the timings as contended.
  const double limit =
      config.parallel_datasets
          ? config.limit_seconds * ThreadPool::Shared().num_threads()
          : config.limit_seconds;
  if (config.parallel_datasets) {
    std::printf(
        "note: datasets measured concurrently; timings include contention "
        "(drop --parallel-datasets for clean latencies)\n");
  }
  PrintDatasetSections(config.datasets, [&](const std::string& name) {
    auto prepared = Prepare(name, config.scale);
    if (!prepared.ok()) return std::string();
    char heading[128];
    std::snprintf(heading, sizeof(heading), "\n--- %s (tmax=%llu) ---\n",
                  name.c_str(),
                  static_cast<unsigned long long>(
                      prepared->stats.num_timestamps));
    TextTable table;
    table.SetHeader({"range", "OTCD(s)", "EnumBase(s)", "Enum(s)",
                     "CoreTime(s)"});
    for (double rf : kRangeFractions) {
      std::vector<Query> queries = MakeQueries(*prepared, config, 0.30, rf);
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f%%", rf * 100);
      if (queries.empty()) {
        table.AddRow({label, "n/a", "n/a", "n/a", "n/a"});
        continue;
      }
      table.AddRow(
          {label,
           TimeCell(RunAlgorithmOnQueries(AlgorithmKind::kOtcd,
                                          prepared->graph, queries, limit)),
           TimeCell(RunAlgorithmOnQueries(AlgorithmKind::kEnumBase,
                                          prepared->graph, queries, limit)),
           TimeCell(RunAlgorithmOnQueries(AlgorithmKind::kEnum,
                                          prepared->graph, queries, limit)),
           TimeCell(RunAlgorithmOnQueries(AlgorithmKind::kCoreTime,
                                          prepared->graph, queries,
                                          limit))});
    }
    return heading + table.ToString();
  }, config.parallel_datasets);
  std::printf(
      "\nExpected shape (paper): each doubling of the range multiplies time "
      "~5-10x; OTCD DNFs at wide ranges while Enum completes.\n");
  return 0;
}
