// Reproduces Figure 12: peak memory of OTCD, EnumBase and Enum per dataset
// under default parameters. We report deterministic *logical* bytes (each
// algorithm's own data structures, see util/mem.h) plus the process VmRSS
// for context. Paper shape: OTCD consistently heavy (pruning marks + dedup
// state), EnumBase heavier still (it stores every emitted core for the
// duplicate check), Enum lightest (it stores only the skyline and the
// linked list); the few-timestamp datasets (WK/PL/YT) are the heaviest for
// their core counts because their cores are dense.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/mem.h"

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;
  BenchConfig config = ParseBenchConfig(argc, argv);

  std::printf(
      "=== Figure 12: peak logical memory (k=30%% kmax, range=10%% tmax, "
      "%u queries, limit %.1fs) ===\n",
      config.queries, config.limit_seconds);
  TextTable table;
  table.SetHeader({"Dataset", "OTCD", "EnumBase", "Enum", "graph itself"});
  // Memory figures are deterministic, so cross-dataset concurrency cannot
  // distort the reported bytes; only the DNF cutoff needs scaling by the
  // pool size (and only when the fan-out is actually on) to absorb
  // contention.
  const double limit =
      config.parallel_datasets
          ? config.limit_seconds * ThreadPool::Shared().num_threads()
          : config.limit_seconds;
  auto rows = CollectDatasetRows(
      SelectedDatasets(config),
      [&](const std::string& name) -> std::vector<TableRow> {
        auto prepared = Prepare(name, config.scale);
        if (!prepared.ok()) return {};
        std::vector<Query> queries =
            MakeQueries(*prepared, config, 0.30, 0.10);
        if (queries.empty()) {
          return {{name, "n/a", "n/a", "n/a",
                   TextTable::CellBytes(
                       prepared->graph.MemoryUsageBytes())}};
        }
        auto mem_cell = [&](AlgorithmKind kind) -> std::string {
          AggregateOutcome agg = RunAlgorithmOnQueries(
              kind, prepared->graph, queries, limit);
          if (!agg.completed) return "DNF";
          return TextTable::CellBytes(agg.max_peak_memory_bytes);
        };
        return {{name, mem_cell(AlgorithmKind::kOtcd),
                 mem_cell(AlgorithmKind::kEnumBase),
                 mem_cell(AlgorithmKind::kEnum),
                 TextTable::CellBytes(prepared->graph.MemoryUsageBytes())}};
      },
      config.parallel_datasets);
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
  std::printf("\nProcess VmRSS now: %s\n",
              TextTable::CellBytes(ReadVmRSSBytes()).c_str());
  std::printf(
      "Expected shape (paper): EnumBase >= OTCD >> Enum; WK/PL/YT heavy "
      "relative to their core counts.\n");
  return 0;
}
