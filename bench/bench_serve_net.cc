// Network serving benchmark (net/server.h): starts a TkcServer over a
// LiveQueryEngine on a loopback socket and drives it with closed-loop
// client threads, reporting throughput and per-call latency percentiles at
// several connection counts — on stdout as a table and as machine-readable
// JSON (default BENCH_serve_net.json) so future PRs can track the wire
// path's perf trajectory alongside BENCH_serve_throughput.json.
//
// Two modes, emitted as separate records:
//   * latency  — `connections` client threads each issue `calls` pipelined
//     round trips of `queries-per-call` queries with no deadline; per-call
//     wall times give p50/p99, the wall clock of the whole burst gives qps.
//     Every wire verdict is checked field-for-field against the engine's
//     own direct ServeBatch answer — any drift flips identical:false and
//     fails the run.
//   * overload — a fresh engine with a 2-slot async queue, one client
//     pipelining every batch up front on 1 ms wire deadlines. The server
//     must shed by deadline over the wire exactly as in-process: every
//     verdict is OK or an explicit Timeout/ResourceExhausted, shed_ratio
//     records how much load the deadline policy refused, p99_ms bounds the
//     time-to-verdict (verdicts must keep flowing while shedding).
//
// Flags (env fallbacks TKC_<UPPER>): --vertices --edges --timestamps
// --seed --queries-per-call --calls --overload-batches --threads --reps
// --out. --smoke / TKC_BENCH_SMOKE=1 shrinks everything to CI scale.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "datasets/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire_format.h"
#include "serve/snapshot.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tkc {
namespace {

bool VerdictMatches(const net::VerdictFrame& verdict,
                    const RunOutcome& reference) {
  return net::StatusCodeFromWire(verdict.status_code) ==
             reference.status.code() &&
         verdict.num_cores == reference.num_cores &&
         verdict.result_size_edges == reference.result_size_edges &&
         verdict.vct_size == reference.vct_size &&
         verdict.ecs_size == reference.ecs_size;
}

double PercentileMs(std::vector<double>* seconds, double pct) {
  if (seconds->empty()) return 0;
  std::sort(seconds->begin(), seconds->end());
  const size_t idx = static_cast<size_t>(
      pct * static_cast<double>(seconds->size() - 1) + 0.5);
  return (*seconds)[idx] * 1000.0;
}

}  // namespace
}  // namespace tkc

int main(int argc, char** argv) {
  using namespace tkc;
  using namespace tkc::bench;

  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "flag error: %s\n",
                 flags_or.status().ToString().c_str());
    return 1;
  }
  const Flags& flags = *flags_or;
  const bool smoke = SmokeModeRequested(flags);
  const uint32_t vertices =
      static_cast<uint32_t>(flags.GetInt("vertices", smoke ? 160 : 200));
  const uint32_t edges =
      static_cast<uint32_t>(flags.GetInt("edges", smoke ? 4500 : 8000));
  const uint32_t timestamps =
      static_cast<uint32_t>(flags.GetInt("timestamps", smoke ? 64 : 96));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const uint32_t queries_per_call = static_cast<uint32_t>(
      flags.GetInt("queries-per-call", smoke ? 16 : 24));
  const uint32_t calls =
      static_cast<uint32_t>(flags.GetInt("calls", smoke ? 24 : 64));
  const uint32_t overload_batches = static_cast<uint32_t>(
      flags.GetInt("overload-batches", smoke ? 64 : 192));
  const int pool_threads =
      std::max(1, static_cast<int>(flags.GetInt("threads", 2)));
  const int reps = static_cast<int>(flags.GetInt("reps", smoke ? 1 : 3));
  const std::string out_path = flags.GetString("out", "BENCH_serve_net.json");

  SyntheticSpec graph_spec;
  graph_spec.name = "serve_net";
  graph_spec.num_vertices = vertices;
  graph_spec.num_edges = edges;
  graph_spec.num_timestamps = timestamps;
  graph_spec.burstiness = 0.3;
  graph_spec.seed = seed;
  TemporalGraph g = GenerateSynthetic(graph_spec);
  GraphStats stats = ComputeGraphStats(g);

  // Distinct queries at the serve bench's operating points; one wire call
  // carries all of them, so a call is a real batch, not a single probe.
  std::vector<Query> uniques;
  const std::pair<double, double> operating_points[] = {
      {0.30, 0.10}, {0.20, 0.10}, {0.20, 0.05}, {0.30, 0.20}};
  int point = 0;
  for (const auto& [kf, rf] : operating_points) {
    if (uniques.size() >= queries_per_call) break;
    WorkloadSpec spec;
    spec.k_fraction = kf;
    spec.range_fraction = rf;
    spec.num_queries = (queries_per_call + 1) / 2;
    spec.seed = seed + point++;
    auto queries = GenerateQueries(g, stats.kmax, spec);
    if (!queries.ok()) continue;
    for (const Query& q : *queries) {
      if (uniques.size() < queries_per_call) uniques.push_back(q);
    }
  }
  if (uniques.empty()) {
    std::fprintf(stderr, "workload: no core-containing query ranges found\n");
    return 1;
  }

  std::printf(
      "=== Net serving: %u vertices, %u edges, %u timestamps, kmax=%u; "
      "%zu queries/call x%u calls/connection, pool=%d, best of %d ===\n",
      vertices, edges, timestamps, stats.kmax, uniques.size(), calls,
      pool_threads, reps);

  ThreadPool pool(pool_threads);
  JsonRecords records;
  bool all_identical = true;

  // ---- latency mode -------------------------------------------------------
  {
    LiveEngineOptions engine_options;
    engine_options.engine.pool = &pool;
    auto live = LiveQueryEngine::Create(g, engine_options);
    if (!live.ok()) {
      std::fprintf(stderr, "engine: %s\n", live.status().ToString().c_str());
      return 1;
    }
    auto server = net::TkcServer::Start(live->get());
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    const uint16_t port = (*server)->port();
    const BatchResult reference = (*live)->ServeBatch(uniques);

    TextTable table;
    table.SetHeader(
        {"Connections", "q/s", "p50 ms", "p99 ms", "scaling", "identical"});
    double qps_1conn = 0;
    for (int connections : {1, 2, 8}) {
      double best_seconds = -1;
      std::vector<double> call_seconds;
      std::atomic<bool> identical{true};
      for (int r = 0; r < reps; ++r) {
        std::vector<std::vector<double>> per_thread(connections);
        std::vector<std::thread> threads;
        WallTimer timer;
        for (int c = 0; c < connections; ++c) {
          threads.emplace_back([&, c] {
            auto client = net::TkcClient::Connect("127.0.0.1", port);
            if (!client.ok()) {
              identical.store(false);
              return;
            }
            per_thread[c].reserve(calls);
            for (uint32_t call = 0; call < calls; ++call) {
              WallTimer call_timer;
              auto response = (*client)->Query(uniques);
              per_thread[c].push_back(call_timer.ElapsedSeconds());
              if (!response.ok() ||
                  response->verdicts.size() != uniques.size()) {
                identical.store(false);
                return;
              }
              for (size_t i = 0; i < uniques.size(); ++i) {
                if (!VerdictMatches(response->verdicts[i],
                                    reference.outcomes[i])) {
                  identical.store(false);
                }
              }
            }
            (*client)->Close();
          });
        }
        for (auto& t : threads) t.join();
        const double seconds = timer.ElapsedSeconds();
        if (best_seconds < 0 || seconds < best_seconds) {
          best_seconds = seconds;
          call_seconds.clear();
          for (const auto& v : per_thread) {
            call_seconds.insert(call_seconds.end(), v.begin(), v.end());
          }
        }
      }
      const uint64_t total_queries = static_cast<uint64_t>(connections) *
                                     calls * uniques.size();
      const double qps =
          best_seconds > 0 ? static_cast<double>(total_queries) / best_seconds
                           : 0;
      if (connections == 1) qps_1conn = qps;
      const double scaling = qps_1conn > 0 ? qps / qps_1conn : 0;
      std::vector<double> p50_input = call_seconds;
      const double p50_ms = PercentileMs(&p50_input, 0.50);
      const double p99_ms = PercentileMs(&call_seconds, 0.99);
      all_identical = all_identical && identical.load();

      char scaling_cell[32];
      std::snprintf(scaling_cell, sizeof(scaling_cell), "%.2fx", scaling);
      table.AddRow({TextTable::Cell(static_cast<uint64_t>(connections)),
                    TextTable::Cell(qps, 1), TextTable::Cell(p50_ms, 4),
                    TextTable::Cell(p99_ms, 4), scaling_cell,
                    identical.load() ? "yes" : "NO"});

      records.BeginRecord();
      records.Add("bench", std::string("serve_net"));
      records.Add("mode", std::string("latency"));
      records.Add("vertices", static_cast<uint64_t>(vertices));
      records.Add("edges", static_cast<uint64_t>(edges));
      records.Add("timestamps", static_cast<uint64_t>(timestamps));
      records.Add("queries_per_call",
                  static_cast<uint64_t>(uniques.size()));
      records.Add("calls_per_connection", static_cast<uint64_t>(calls));
      records.Add("threads", pool_threads);
      records.Add("connections", connections);
      records.Add("seconds", best_seconds);
      records.Add("qps", qps);
      records.Add("p50_ms", p50_ms);
      records.Add("p99_ms", p99_ms);
      records.Add("p99_over_p50", p50_ms > 0 ? p99_ms / p50_ms : 0.0);
      records.Add("scaling", scaling);
      records.Add("identical", identical.load());
    }
    table.Print();
    const net::ServerStats server_stats = (*server)->stats();
    (*server)->Stop();
    std::printf(
        "server: %llu requests, %llu responses streamed, %llu bytes out\n",
        static_cast<unsigned long long>(server_stats.requests_received),
        static_cast<unsigned long long>(server_stats.responses_streamed),
        static_cast<unsigned long long>(server_stats.bytes_written));
  }

  // ---- overload mode ------------------------------------------------------
  {
    LiveEngineOptions engine_options;
    engine_options.engine.pool = &pool;
    engine_options.engine.async_queue_capacity = 2;
    auto live = LiveQueryEngine::Create(g, engine_options);
    if (!live.ok()) {
      std::fprintf(stderr, "engine: %s\n", live.status().ToString().c_str());
      return 1;
    }
    auto server = net::TkcServer::Start(live->get());
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    auto client = net::TkcClient::Connect("127.0.0.1", (*server)->port());
    if (!client.ok()) {
      std::fprintf(stderr, "client: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }

    bool overload_clean = true;
    uint64_t explicit_verdicts = 0;
    uint64_t ok_verdicts = 0;
    uint64_t total_verdicts = 0;
    std::vector<uint64_t> ids;
    std::vector<double> send_seconds;
    std::vector<double> verdict_seconds;
    ids.reserve(overload_batches);
    send_seconds.reserve(overload_batches);
    WallTimer overload_timer;
    for (uint32_t b = 0; b < overload_batches; ++b) {
      auto id = (*client)->Send(uniques, /*deadline_ms=*/1);
      if (!id.ok()) {
        overload_clean = false;
        break;
      }
      ids.push_back(*id);
      send_seconds.push_back(overload_timer.ElapsedSeconds());
    }
    for (size_t b = 0; b < ids.size(); ++b) {
      auto response = (*client)->Wait(ids[b]);
      if (!response.ok()) {
        overload_clean = false;
        break;
      }
      verdict_seconds.push_back(overload_timer.ElapsedSeconds() -
                                send_seconds[b]);
      for (const net::VerdictFrame& verdict : response->verdicts) {
        ++total_verdicts;
        const StatusCode code = net::StatusCodeFromWire(verdict.status_code);
        if (code == StatusCode::kOk) {
          ++ok_verdicts;
        } else if (code == StatusCode::kTimeout ||
                   code == StatusCode::kResourceExhausted) {
          ++explicit_verdicts;
        } else {
          // A blown wire deadline must surface as one of exactly those two
          // statuses — anything else is a contract violation.
          overload_clean = false;
        }
      }
    }
    (*client)->Close();
    (*server)->Stop();
    const net::ServerStats overload_stats = (*server)->stats();
    overload_clean = overload_clean &&
                     total_verdicts ==
                         static_cast<uint64_t>(ids.size()) * uniques.size();
    all_identical = all_identical && overload_clean;

    const double shed_ratio =
        total_verdicts > 0
            ? static_cast<double>(explicit_verdicts) /
                  static_cast<double>(total_verdicts)
            : 0;
    const double verdict_p99_ms = PercentileMs(&verdict_seconds, 0.99);
    std::printf(
        "\noverload (%u batches, 1 ms deadlines, 2-slot queue): "
        "%.0f%% shed/timeout, %llu ok, verdict p99 %.3f ms, "
        "server shed=%llu expired=%llu — %s\n",
        overload_batches, shed_ratio * 100,
        static_cast<unsigned long long>(ok_verdicts), verdict_p99_ms,
        static_cast<unsigned long long>(overload_stats.batches_shed),
        static_cast<unsigned long long>(overload_stats.deadlines_expired),
        overload_clean ? "clean" : "VIOLATION");

    records.BeginRecord();
    records.Add("bench", std::string("serve_net"));
    records.Add("mode", std::string("overload"));
    records.Add("connections", 1);
    records.Add("batches", static_cast<uint64_t>(overload_batches));
    records.Add("queries_per_call", static_cast<uint64_t>(uniques.size()));
    records.Add("threads", pool_threads);
    records.Add("shed_ratio", shed_ratio);
    records.Add("ok_verdicts", ok_verdicts);
    records.Add("p99_ms", verdict_p99_ms);
    records.Add("batches_shed", overload_stats.batches_shed);
    records.Add("deadlines_expired", overload_stats.deadlines_expired);
    records.Add("identical", overload_clean);
  }

  if (records.WriteFile(out_path)) {
    std::printf("wrote %s\n", out_path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "ERROR: a wire verdict violated the serving contract\n");
    return 1;
  }
  return 0;
}
