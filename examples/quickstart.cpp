// Quickstart: load (or build) a temporal graph, run one time-range k-core
// query, and print every distinct temporal k-core with its Tightest Time
// Interval.
//
//   ./quickstart                      # runs on the paper's Figure 1 graph
//   ./quickstart graph.txt 2 1 100    # SNAP file, k, raw Ts, raw Te
//
// The SNAP format is one edge per line: "SRC DST UNIXTS".

#include <cstdio>
#include <string>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "datasets/generators.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"

int main(int argc, char** argv) {
  using namespace tkc;

  // 1. Obtain a temporal graph.
  TemporalGraph graph;
  uint32_t k = 2;
  Window range;
  if (argc >= 2) {
    auto loaded = LoadSnapFile(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
    if (argc >= 3) k = static_cast<uint32_t>(std::stoul(argv[2]));
    range = graph.FullRange();
    if (argc >= 5) {
      // Raw timestamps from the command line -> compacted range.
      Timestamp lo = graph.CompactTimestampFloor(std::stoull(argv[3]) - 1) + 1;
      Timestamp hi = graph.CompactTimestampFloor(std::stoull(argv[4]));
      if (lo >= 1 && lo <= hi) range = Window{lo, hi};
    }
  } else {
    // The 9-vertex example from the paper's Figure 1, with the query of
    // Example 1: k = 2 over the time range [1, 4].
    graph = PaperExampleGraph();
    range = Window{1, 4};
  }

  GraphStats stats = ComputeGraphStats(graph);
  std::printf("graph: %s\n", FormatGraphStats("input", stats).c_str());
  std::printf("query: k=%u, time range [%u, %u]\n", k, range.start,
              range.end);

  // 2. Run the query. CollectingSink materializes results; use
  //    CountingSink or CallbackSink for large result sets.
  CollectingSink sink;
  QueryStats query_stats;
  Status status =
      RunTemporalKCoreQuery(graph, k, range, &sink, {}, &query_stats);
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Consume the results.
  std::printf("\nfound %zu distinct temporal %u-cores in %.4fs "
              "(CoreTime %.4fs + Enum %.4fs)\n",
              sink.cores().size(), k, query_stats.total_seconds,
              query_stats.coretime_seconds, query_stats.enumeration_seconds);
  size_t shown = 0;
  for (const CoreResult& core : sink.cores()) {
    if (++shown > 10) {
      std::printf("  ... and %zu more\n", sink.cores().size() - 10);
      break;
    }
    std::printf("  TTI [%u,%u], %zu edges:", core.tti.start, core.tti.end,
                core.edges.size());
    size_t printed = 0;
    for (EdgeId e : core.edges) {
      if (++printed > 8) {
        std::printf(" ...");
        break;
      }
      const TemporalEdge& edge = graph.edge(e);
      std::printf(" (%u,%u,@%u)", edge.u, edge.v, edge.t);
    }
    std::printf("\n");
  }
  std::printf("\nindex sizes: |VCT|=%llu entries, |ECS|=%llu minimal core "
              "windows, |R|=%llu edges\n",
              static_cast<unsigned long long>(query_stats.vct_size),
              static_cast<unsigned long long>(query_stats.ecs_size),
              static_cast<unsigned long long>(query_stats.result_size_edges));
  return 0;
}
