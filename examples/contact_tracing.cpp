// Disease-outbreak monitoring scenario from the paper's introduction:
// contacts between individuals form a temporal graph, and transmission
// clusters "emerge and dissipate rapidly over short and irregular
// timeframes". Exhaustive temporal k-core enumeration finds every fleeting
// high-risk cluster — including ones no fixed window would isolate — so
// health authorities can reconstruct transmission chains.
//
// The example simulates two weeks of proximity contacts with household
// background mixing plus two super-spreading gatherings, then enumerates
// all temporal 3-cores and ranks clusters by contact intensity.

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace {

using namespace tkc;

constexpr uint32_t kPeople = 300;
constexpr uint32_t kHours = 14 * 24;  // two weeks at hourly resolution

TemporalGraph BuildContactNetwork() {
  Rng rng(7);
  TemporalGraphBuilder builder;
  builder.EnsureVertexCount(kPeople);
  // Household mixing: partition into households of 3-5; members contact
  // each other a few times per day.
  VertexId person = 0;
  while (person < kPeople) {
    uint32_t size = 3 + static_cast<uint32_t>(rng.NextBounded(3));
    VertexId first = person;
    VertexId last = std::min<VertexId>(kPeople, person + size);
    for (uint32_t day = 0; day < 14; ++day) {
      for (VertexId a = first; a < last; ++a) {
        for (VertexId b = a + 1; b < last; ++b) {
          if (rng.NextBool(0.5)) {
            builder.AddEdge(a, b, day * 24 + 1 + rng.NextBounded(24));
          }
        }
      }
    }
    person = last;
  }
  // Random community contacts.
  for (uint32_t i = 0; i < 4000; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(kPeople));
    VertexId b = static_cast<VertexId>(rng.NextBounded(kPeople));
    if (a == b) continue;
    builder.AddEdge(a, b, 1 + rng.NextBounded(kHours));
  }
  // Two super-spreading gatherings: ~20 attendees in a 3-hour window.
  for (uint32_t gathering = 0; gathering < 2; ++gathering) {
    uint32_t start_hour = gathering == 0 ? 3 * 24 + 19 : 9 * 24 + 14;
    std::set<VertexId> attendees;
    while (attendees.size() < 20) {
      attendees.insert(static_cast<VertexId>(rng.NextBounded(kPeople)));
    }
    std::vector<VertexId> list(attendees.begin(), attendees.end());
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        if (rng.NextBool(0.55)) {
          builder.AddEdge(list[i], list[j],
                          start_hour + rng.NextBounded(3));
        }
      }
    }
  }
  return std::move(builder.Build()).value();
}

}  // namespace

int main() {
  TemporalGraph graph = BuildContactNetwork();
  std::printf("contact network: %u people, %u contacts, %u distinct hours\n",
              graph.num_vertices(), graph.num_edges(),
              graph.num_timestamps());

  const uint32_t k = 3;  // clusters where everyone met >= 3 others
  CountingSink counter;
  QueryStats stats;
  Status status = RunTemporalKCoreQuery(graph, k, graph.FullRange(),
                                        &counter, {}, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%llu temporal %u-cores enumerated in %.4fs\n\n",
              static_cast<unsigned long long>(counter.num_cores()), k,
              stats.total_seconds);

  // Second pass with a callback sink: keep the clusters confined to short
  // TTIs (<= 6 hours) — the fleeting high-risk events.
  struct Cluster {
    Window tti;
    size_t contacts;
    std::set<VertexId> people;
  };
  std::vector<Cluster> fleeting;
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    if (tti.Length() > 6) return;
    Cluster c;
    c.tti = tti;
    c.contacts = edges.size();
    for (EdgeId e : edges) {
      c.people.insert(graph.edge(e).u);
      c.people.insert(graph.edge(e).v);
    }
    fleeting.push_back(std::move(c));
  });
  status = RunTemporalKCoreQuery(graph, k, graph.FullRange(), &sink);
  if (!status.ok()) {
    std::fprintf(stderr, "second pass failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::sort(fleeting.begin(), fleeting.end(),
            [](const Cluster& a, const Cluster& b) {
              return a.contacts > b.contacts;
            });
  std::printf("fleeting high-risk clusters (TTI <= 6 hours), top 8 by "
              "contact count:\n");
  for (size_t i = 0; i < fleeting.size() && i < 8; ++i) {
    const Cluster& c = fleeting[i];
    uint32_t day = (c.tti.start - 1) / 24 + 1;
    std::printf(
        "  day %2u, hours [%u..%u]: %zu people, %zu contacts (quarantine "
        "candidates)\n",
        day, c.tti.start, c.tti.end, c.people.size(), c.contacts);
  }
  if (fleeting.empty()) {
    std::printf("  none found (unexpected for this synthetic scenario)\n");
  }
  return 0;
}
