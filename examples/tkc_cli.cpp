// tkc_cli — command-line front end for time-range temporal k-core queries
// on SNAP-format files or the built-in synthetic datasets.
//
//   tkc_cli --dataset=CM --k-frac=0.3 --range-frac=0.1 --algo=enum
//   tkc_cli --file=CollegeMsg.txt --k=5 --ts=1 --te=5000 --algo=otcd
//
// Flags:
//   --file=PATH | --dataset=NAME[,scale via --scale]   input graph
//   --k=N | --k-frac=F          absolute k, or fraction of kmax (default .3)
//   --ts=A --te=B               compacted time range (default: derived)
//   --range-frac=F              range as a fraction of tmax (default 0.1)
//   --algo=enum|enumbase|otcd|naive                    (default enum)
//   --limit=S                   time limit in seconds   (default unlimited)
//   --print=N                   print the first N cores (default 5)
//   --stats                     print result-set distribution statistics

#include <cstdio>
#include <string>

#include "core/sinks.h"
#include "core/result_stats.h"
#include "core/temporal_kcore.h"
#include "datasets/registry.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "otcd/otcd.h"
#include "util/flags.h"
#include "workload/query_workload.h"

int main(int argc, char** argv) {
  using namespace tkc;
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_or;

  // --- Input graph. -----------------------------------------------------
  TemporalGraph graph;
  if (flags.Has("file")) {
    auto loaded = LoadSnapFile(flags.GetString("file", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    std::string name = flags.GetString("dataset", "CM");
    auto generated = GenerateByName(name, flags.GetDouble("scale", 1.0));
    if (!generated.ok()) {
      std::fprintf(stderr, "dataset: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
    std::printf("generated synthetic dataset '%s'\n", name.c_str());
  }
  GraphStats stats = ComputeGraphStats(graph);
  std::printf("%s\n", FormatGraphStats("graph", stats).c_str());

  // --- Query parameters. -------------------------------------------------
  uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 0));
  if (k == 0) k = DeriveK(stats.kmax, flags.GetDouble("k-frac", 0.30));
  Window range;
  if (flags.Has("ts") && flags.Has("te")) {
    range = Window{static_cast<Timestamp>(flags.GetInt("ts", 1)),
                   static_cast<Timestamp>(flags.GetInt("te", 1))};
  } else {
    WorkloadSpec spec;
    spec.k_fraction =
        static_cast<double>(k) / std::max<uint32_t>(stats.kmax, 1);
    spec.range_fraction = flags.GetDouble("range-frac", 0.10);
    spec.num_queries = 1;
    auto queries = GenerateQueries(graph, stats.kmax, spec);
    if (!queries.ok()) {
      std::fprintf(stderr, "no valid query range: %s\n",
                   queries.status().ToString().c_str());
      return 1;
    }
    range = (*queries)[0].range;
    k = (*queries)[0].k;
  }
  std::printf("query: k=%u range=[%u,%u] (%llu timestamps)\n", k, range.start,
              range.end, static_cast<unsigned long long>(range.Length()));

  Deadline deadline;
  double limit = flags.GetDouble("limit", 0);
  if (limit > 0) deadline = Deadline::AfterSeconds(limit);

  // --- Run. ---------------------------------------------------------------
  const int64_t print_n = flags.GetInt("print", 5);
  const bool want_stats = flags.GetBool("stats", false);
  StatsSink stats_sink(range);
  int64_t printed = 0;
  uint64_t cores = 0, result_edges = 0;
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    ++cores;
    result_edges += edges.size();
    if (want_stats) stats_sink.OnCore(tti, edges);
    if (printed < print_n) {
      ++printed;
      std::printf("  core %llu: TTI [%u,%u], %zu edges\n",
                  static_cast<unsigned long long>(cores), tti.start, tti.end,
                  edges.size());
    }
  });

  std::string algo = flags.GetString("algo", "enum");
  WallTimer timer;
  Status status;
  if (algo == "otcd") {
    OtcdOptions options;
    options.deadline = deadline;
    status = RunOtcd(graph, k, range, &sink, options);
  } else {
    QueryOptions options;
    options.deadline = deadline;
    options.enum_method = algo == "enumbase" ? EnumMethod::kEnumBase
                          : algo == "naive"  ? EnumMethod::kNaive
                                             : EnumMethod::kEnum;
    status = RunTemporalKCoreQuery(graph, k, range, &sink, options);
  }
  double seconds = timer.ElapsedSeconds();
  if (!status.ok()) {
    std::fprintf(stderr, "%s after %.3fs\n", status.ToString().c_str(),
                 seconds);
    return 1;
  }
  std::printf("%s: %llu distinct temporal %u-cores, |R|=%llu edges, %.4fs\n",
              algo.c_str(), static_cast<unsigned long long>(cores), k,
              static_cast<unsigned long long>(result_edges), seconds);
  if (want_stats) {
    std::printf("\n%s", stats_sink.Report().c_str());
  }
  return 0;
}
