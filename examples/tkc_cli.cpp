// tkc_cli — command-line front end for time-range temporal k-core queries
// on SNAP-format files or the built-in synthetic datasets. Since PR 2 the
// CLI serves through the QueryEngine (serve/query_engine.h): queries are
// batched, sharded over a thread pool, admission-checked against the PHC
// index, and memoized in the engine's LRU — the same path a long-lived
// server would use.
//
//   tkc_cli --dataset=CM --k-frac=0.3 --range-frac=0.1 --algo=enum
//   tkc_cli --file=CollegeMsg.txt --k=5 --ts=1 --te=5000 --algo=otcd
//   tkc_cli --dataset=SU --queries=32 --repeat=3 --threads=8
//
// Flags:
//   --file=PATH | --dataset=NAME[,scale via --scale]   input graph
//   --k=N | --k-frac=F          absolute k, or fraction of kmax (default .3)
//   --ts=A --te=B               compacted time range (default: derived)
//   --range-frac=F              range as a fraction of tmax (default 0.1)
//   --algo=enum|enumbase|otcd|naive                    (default enum)
//   --queries=N                 batch size (default 1; >1 draws a workload)
//   --repeat=R                  serve the batch R times  (default 1)
//   --threads=N                 engine pool size (default TKC_NUM_THREADS /
//                               hardware concurrency)
//   --cache=N                   engine LRU capacity      (default 1024)
//   --index=0|1                 build the PHC admission index (default: on
//                               for batches of >1 query, off for a single
//                               query, where the build would dwarf it)
//   --limit=S                   per-query time limit in seconds (default
//                               unlimited)
//   --print=N                   print the first N cores of the first query
//                               (default 5; runs the detailed sink path)
//   --stats                     print result-set distribution statistics
//   --updates=PATH              live-update replay mode: PATH holds edge
//                               updates, one "u v raw_time" per line; blank
//                               lines split the stream into batches ('#'
//                               comments allowed). The CLI serves through a
//                               LiveQueryEngine: the query batch is
//                               submitted asynchronously, each update batch
//                               is applied as a snapshot swap while queries
//                               are in flight, and every result reports the
//                               graph version it was pinned to.
//   --serve=PORT                network server mode: builds the graph and a
//                               LiveQueryEngine, then serves the wire
//                               protocol (net/server.h) on PORT (0 picks an
//                               ephemeral port, printed at startup) until
//                               stdin closes / Enter is pressed. Engine
//                               flags (--threads --cache --index --algo
//                               --limit) apply as usual.
//   --connect=HOST:PORT         network client mode: connects a TkcClient,
//                               sends the query batch --repeat times, and
//                               prints per-round verdict summaries with the
//                               snapshot version each batch was pinned to.
//                               --limit=S becomes the wire deadline;
//                               --stats fetches the server's counters.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <future>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/sinks.h"
#include "core/result_stats.h"
#include "core/temporal_kcore.h"
#include "datasets/registry.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire_format.h"
#include "otcd/otcd.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "workload/query_workload.h"

namespace {

// Parses an update stream: "u v raw_time" lines, '#' comments, blank lines
// separate batches. Returns false (with a message) on malformed input.
bool LoadUpdateBatches(
    const std::string& path,
    std::vector<std::vector<tkc::RawTemporalEdge>>* batches) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "updates: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::vector<tkc::RawTemporalEdge> batch;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) {  // blank: batch boundary
      if (!batch.empty()) batches->push_back(std::move(batch));
      batch.clear();
      continue;
    }
    if (line[first] == '#') continue;
    // Parse signed and range-check: istream>> into an unsigned type would
    // silently wrap "-1" to ~4.3 billion (and a 4.3B-vertex id makes the
    // graph builder allocate per-vertex arrays that large).
    std::istringstream fields(line);
    long long u, v, raw_time;
    std::string trailing;
    if (!(fields >> u >> v >> raw_time) || (fields >> trailing) || u < 0 ||
        v < 0 || raw_time < 0 ||
        u >= std::numeric_limits<tkc::VertexId>::max() ||  // max = sentinel
        v >= std::numeric_limits<tkc::VertexId>::max()) {
      std::fprintf(stderr, "updates: malformed line %zu: '%s'\n", line_no,
                   line.c_str());
      return false;
    }
    batch.push_back(tkc::RawTemporalEdge{static_cast<tkc::VertexId>(u),
                                         static_cast<tkc::VertexId>(v),
                                         static_cast<uint64_t>(raw_time)});
  }
  if (!batch.empty()) batches->push_back(std::move(batch));
  return true;
}

// The --updates replay: async query batches interleaved with snapshot
// swaps. Returns the process exit code.
int RunLiveReplay(tkc::TemporalGraph graph,
                  const std::vector<tkc::Query>& queries,
                  const std::vector<std::vector<tkc::RawTemporalEdge>>& events,
                  const tkc::QueryEngineOptions& engine_options, int repeat) {
  using namespace tkc;
  LiveEngineOptions options;
  options.engine = engine_options;
  auto live = LiveQueryEngine::Create(std::move(graph), options);
  if (!live.ok()) {
    std::fprintf(stderr, "live engine: %s\n", live.status().ToString().c_str());
    return 1;
  }

  // One async round before any update, then one per update event, times
  // --repeat: submissions are never awaited before the next swap is
  // queued, so batches genuinely overlap rebuilds.
  std::vector<std::future<BatchResult>> rounds;
  std::vector<std::future<Status>> swaps;
  for (int r = 0; r < repeat; ++r) {
    rounds.push_back((*live)->SubmitAsync(queries));
    for (const auto& event : events) {
      swaps.push_back((*live)->ApplyUpdates(event));
      rounds.push_back((*live)->SubmitAsync(queries));
    }
  }

  int failures = 0;
  for (size_t i = 0; i < swaps.size(); ++i) {
    Status status = swaps[i].get();
    if (!status.ok()) {
      std::fprintf(stderr, "update %zu: %s\n", i, status.ToString().c_str());
      ++failures;
    }
  }
  for (size_t i = 0; i < rounds.size(); ++i) {
    BatchResult result = rounds[i].get();
    uint64_t cores = 0, edges = 0;
    for (const RunOutcome& out : result.outcomes) {
      if (!out.status.ok()) {
        std::fprintf(stderr, "round %zu: %s\n", i,
                     out.status.ToString().c_str());
        ++failures;
        continue;
      }
      cores += out.num_cores;
      edges += out.result_size_edges;
    }
    std::printf(
        "round %2zu: graph v%llu, %zu queries -> %llu cores, |R|=%llu\n", i,
        static_cast<unsigned long long>(result.snapshot_version),
        result.outcomes.size(), static_cast<unsigned long long>(cores),
        static_cast<unsigned long long>(edges));
  }
  LiveStats stats = (*live)->stats();
  const TemporalGraph& final_graph = (*live)->snapshot()->graph();
  std::printf(
      "live: %llu swaps, %llu edges applied, %llu failed batches, last "
      "rebuild %.4fs, last swap %.6fs; final graph: %u vertices, %u edges, "
      "%u timestamps\n",
      static_cast<unsigned long long>(stats.swaps),
      static_cast<unsigned long long>(stats.edges_applied),
      static_cast<unsigned long long>(stats.failed_updates),
      stats.last_rebuild_seconds, stats.last_swap_seconds,
      final_graph.num_vertices(), final_graph.num_edges(),
      final_graph.num_timestamps());
  const UpdateStats update = (*live)->update_stats();
  std::printf(
      "updater: %llu/%llu batches applied (%llu coalesced), %llu slices "
      "reused / %llu suffix-maintained / %llu rebuilt (%llu incremental "
      "swaps), %llu/%llu rows carried, %llu emergence tables carried, %llu "
      "cache entries carried\n",
      static_cast<unsigned long long>(update.batches_applied),
      static_cast<unsigned long long>(update.batches_submitted),
      static_cast<unsigned long long>(update.batches_coalesced),
      static_cast<unsigned long long>(update.slices_reused),
      static_cast<unsigned long long>(update.suffix_rebuilds),
      static_cast<unsigned long long>(update.slices_rebuilt),
      static_cast<unsigned long long>(update.incremental_swaps),
      static_cast<unsigned long long>(update.rows_reused),
      static_cast<unsigned long long>(update.rows_total),
      static_cast<unsigned long long>(update.emergence_tables_carried),
      static_cast<unsigned long long>(update.cache_entries_carried));
  return failures == 0 ? 0 : 1;
}

// The --serve mode: a TkcServer over a LiveQueryEngine on `port`, running
// until stdin closes (Enter, ^D, or the parent dropping the pipe). Returns
// the process exit code.
int RunServe(tkc::TemporalGraph graph,
             const tkc::QueryEngineOptions& engine_options, int port) {
  using namespace tkc;
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "serve: port %d out of range\n", port);
    return 2;
  }
  LiveEngineOptions options;
  options.engine = engine_options;
  auto live = LiveQueryEngine::Create(std::move(graph), options);
  if (!live.ok()) {
    std::fprintf(stderr, "live engine: %s\n",
                 live.status().ToString().c_str());
    return 1;
  }
  net::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(port);
  auto server = net::TkcServer::Start(live->get(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u — press Enter to stop\n",
              (*server)->port());
  std::fflush(stdout);
  (void)std::getchar();  // EOF works too: serve-until-killed under a pipe
  (*server)->Stop();
  const net::ServerStats stats = (*server)->stats();
  std::printf(
      "server: %llu connections (%llu closed, %llu dropped), %llu requests, "
      "%llu batches (%llu shed, %llu expired), %llu responses streamed, "
      "%llu dropped, %llu KiB out\n",
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.connections_closed),
      static_cast<unsigned long long>(stats.connections_dropped),
      static_cast<unsigned long long>(stats.requests_received),
      static_cast<unsigned long long>(stats.batches_submitted),
      static_cast<unsigned long long>(stats.batches_shed),
      static_cast<unsigned long long>(stats.deadlines_expired),
      static_cast<unsigned long long>(stats.responses_streamed),
      static_cast<unsigned long long>(stats.responses_dropped),
      static_cast<unsigned long long>(stats.bytes_written / 1024));
  return 0;
}

// The --connect mode: the generated query batch goes over the wire instead
// of into a local engine. Returns the process exit code.
int RunConnect(const std::string& target,
               const std::vector<tkc::Query>& queries, int repeat,
               double limit_seconds, bool want_stats) {
  using namespace tkc;
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= target.size()) {
    std::fprintf(stderr, "connect: expected HOST:PORT, got '%s'\n",
                 target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const int port = std::atoi(target.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "connect: bad port in '%s'\n", target.c_str());
    return 2;
  }
  auto client = net::TkcClient::Connect(host, static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n", client.status().ToString().c_str());
    return 1;
  }
  const uint32_t deadline_ms =
      limit_seconds > 0 ? static_cast<uint32_t>(limit_seconds * 1000) : 0;

  int failures = 0;
  WallTimer timer;
  for (int r = 0; r < repeat; ++r) {
    auto response = (*client)->Query(queries, deadline_ms);
    if (!response.ok()) {
      std::fprintf(stderr, "round %d: %s\n", r,
                   response.status().ToString().c_str());
      return 1;
    }
    uint64_t cores = 0, edges = 0;
    for (const net::VerdictFrame& verdict : response->verdicts) {
      const StatusCode code = net::StatusCodeFromWire(verdict.status_code);
      if (code != StatusCode::kOk) {
        std::fprintf(stderr, "round %d query %u: %s\n", r,
                     verdict.query_index,
                     Status(code, "wire verdict").ToString().c_str());
        ++failures;
        continue;
      }
      cores += verdict.num_cores;
      edges += verdict.result_size_edges;
    }
    std::printf(
        "round %2d: graph v%llu, %zu queries -> %llu cores, |R|=%llu\n", r,
        static_cast<unsigned long long>(response->snapshot_version),
        response->verdicts.size(), static_cast<unsigned long long>(cores),
        static_cast<unsigned long long>(edges));
  }
  const double seconds = timer.ElapsedSeconds();
  std::printf("%d round(s) in %.4fs (%.1f q/s over the wire)\n", repeat,
              seconds,
              seconds > 0 ? static_cast<double>(repeat) *
                                static_cast<double>(queries.size()) / seconds
                          : 0.0);
  if (want_stats) {
    auto stats = (*client)->FetchStats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "server: %llu connections, %llu requests, %llu batches (%llu shed, "
        "%llu expired), %llu responses streamed, %llu dropped\n",
        static_cast<unsigned long long>(stats->connections_accepted),
        static_cast<unsigned long long>(stats->requests_received),
        static_cast<unsigned long long>(stats->batches_submitted),
        static_cast<unsigned long long>(stats->batches_shed),
        static_cast<unsigned long long>(stats->deadlines_expired),
        static_cast<unsigned long long>(stats->responses_streamed),
        static_cast<unsigned long long>(stats->responses_dropped));
  }
  (*client)->Close();
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tkc;
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 2;
  }
  const Flags& flags = *flags_or;

  // --- Input graph. -----------------------------------------------------
  TemporalGraph graph;
  if (flags.Has("file")) {
    auto loaded = LoadSnapFile(flags.GetString("file", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded).value();
  } else {
    std::string name = flags.GetString("dataset", "CM");
    auto generated = GenerateByName(name, flags.GetDouble("scale", 1.0));
    if (!generated.ok()) {
      std::fprintf(stderr, "dataset: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
    std::printf("generated synthetic dataset '%s'\n", name.c_str());
  }
  GraphStats stats = ComputeGraphStats(graph);
  std::printf("%s\n", FormatGraphStats("graph", stats).c_str());

  // --- Query batch. ------------------------------------------------------
  // Clamp user-supplied counts before the unsigned casts: a negative value
  // would otherwise wrap to ~4e9 queries or an unallocatable cache.
  const uint32_t num_queries = static_cast<uint32_t>(
      std::clamp<int64_t>(flags.GetInt("queries", 1), 1, 1000000));
  std::vector<Query> queries;
  if (flags.Has("ts") && flags.Has("te")) {
    uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 0));
    if (k == 0) k = DeriveK(stats.kmax, flags.GetDouble("k-frac", 0.30));
    queries.push_back(
        Query{k, Window{static_cast<Timestamp>(flags.GetInt("ts", 1)),
                        static_cast<Timestamp>(flags.GetInt("te", 1))}});
  } else {
    WorkloadSpec spec;
    uint32_t k = static_cast<uint32_t>(flags.GetInt("k", 0));
    spec.k_fraction = k != 0
                          ? static_cast<double>(k) /
                                std::max<uint32_t>(stats.kmax, 1)
                          : flags.GetDouble("k-frac", 0.30);
    spec.range_fraction = flags.GetDouble("range-frac", 0.10);
    spec.num_queries = std::max<uint32_t>(1, num_queries);
    auto generated = GenerateQueries(graph, stats.kmax, spec);
    if (!generated.ok()) {
      std::fprintf(stderr, "no valid query range: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    queries = std::move(generated).value();
  }
  std::printf("batch: %zu query(ies), first k=%u range=[%u,%u]\n",
              queries.size(), queries[0].k, queries[0].range.start,
              queries[0].range.end);

  // --- Serving engine. ----------------------------------------------------
  std::string algo = flags.GetString("algo", "enum");
  AlgorithmKind kind = algo == "otcd"       ? AlgorithmKind::kOtcd
                       : algo == "enumbase" ? AlgorithmKind::kEnumBase
                       : algo == "naive"    ? AlgorithmKind::kNaive
                                            : AlgorithmKind::kEnum;
  const int threads = static_cast<int>(
      std::clamp<int64_t>(flags.GetInt("threads", DefaultNumThreads()), 1,
                          1024));
  ThreadPool pool(threads);
  QueryEngineOptions options;
  options.algorithm = kind;
  options.pool = &pool;
  options.cache_capacity = static_cast<size_t>(
      std::clamp<int64_t>(flags.GetInt("cache", 1024), 0, 1 << 24));
  // The full multi-k admission index is a server-grade precompute — worth
  // it for batches, dwarfing the work of a single query. Default: batches
  // only; --index=0/1 overrides either way.
  options.build_index = flags.GetBool("index", queries.size() > 1);
  options.per_query_limit_seconds = flags.GetDouble("limit", 0);

  const int repeat = std::max<int>(1, flags.GetInt("repeat", 1));
  if (flags.Has("serve")) {
    return RunServe(std::move(graph), options,
                    static_cast<int>(flags.GetInt("serve", 0)));
  }
  if (flags.Has("connect")) {
    // The graph built above only seeded the workload; the server answers
    // from its own copy (start both sides with the same dataset flags).
    return RunConnect(flags.GetString("connect", ""), queries, repeat,
                      flags.GetDouble("limit", 0),
                      flags.GetBool("stats", false));
  }
  if (flags.Has("updates")) {
    std::vector<std::vector<RawTemporalEdge>> events;
    if (!LoadUpdateBatches(flags.GetString("updates", ""), &events)) return 2;
    std::printf("replaying %zu update batch(es) against the live engine\n",
                events.size());
    return RunLiveReplay(std::move(graph), queries, events, options, repeat);
  }

  auto engine = QueryEngine::Create(graph, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  WallTimer timer;
  std::vector<RunOutcome> outcomes;
  for (int r = 0; r < repeat; ++r) {
    outcomes = engine->ServeBatch(queries);
  }
  const double seconds = timer.ElapsedSeconds();

  uint64_t cores = 0, result_edges = 0;
  bool all_ok = true;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const RunOutcome& out = outcomes[i];
    if (!out.status.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", i,
                   out.status.ToString().c_str());
      all_ok = false;
      continue;
    }
    cores += out.num_cores;
    result_edges += out.result_size_edges;
  }
  ServeStats serve_stats = engine->stats();
  std::printf(
      "%s x%d over %d thread(s): %llu distinct temporal cores, |R|=%llu "
      "edges, %.4fs total (%.1f q/s)\n",
      algo.c_str(), repeat, engine->num_threads(),
      static_cast<unsigned long long>(cores),
      static_cast<unsigned long long>(result_edges), seconds,
      seconds > 0 ? static_cast<double>(serve_stats.queries_served) / seconds
                  : 0.0);
  std::printf(
      "engine: served=%llu executed=%llu cache_hits=%llu dedup_hits=%llu "
      "index_rejections=%llu\n",
      static_cast<unsigned long long>(serve_stats.queries_served),
      static_cast<unsigned long long>(serve_stats.executed),
      static_cast<unsigned long long>(serve_stats.cache_hits),
      static_cast<unsigned long long>(serve_stats.batch_dedup_hits),
      static_cast<unsigned long long>(serve_stats.index_rejections));
  if (!all_ok) return 1;

  // --- Optional core listing (detailed sink path, first query only). ------
  // The engine counts results without materializing them, so listing cores
  // is a second, sink-driven run of query 0 (disable with --print=0). It
  // honors the same per-query --limit as the served batch.
  const int64_t print_n = flags.GetInt("print", 5);
  const bool want_stats = flags.GetBool("stats", false);
  if (print_n > 0 || want_stats) {
    Deadline print_deadline;
    const double limit_seconds = flags.GetDouble("limit", 0);
    if (limit_seconds > 0) {
      print_deadline = Deadline::AfterSeconds(limit_seconds);
    }
    const Query& q = queries[0];
    StatsSink stats_sink(q.range);
    int64_t printed = 0;
    std::printf("\nfirst %lld core(s) of query 0 (k=%u, [%u,%u]):\n",
                static_cast<long long>(print_n), q.k, q.range.start,
                q.range.end);
    CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
      if (want_stats) stats_sink.OnCore(tti, edges);
      if (printed < print_n) {
        ++printed;
        std::printf("  core %lld: TTI [%u,%u], %zu edges\n",
                    static_cast<long long>(printed), tti.start, tti.end,
                    edges.size());
      }
    });
    Status status;
    if (kind == AlgorithmKind::kOtcd) {
      OtcdOptions otcd_options;
      otcd_options.deadline = print_deadline;
      status = RunOtcd(graph, q.k, q.range, &sink, otcd_options);
    } else {
      QueryOptions query_options;
      query_options.enum_method = kind == AlgorithmKind::kEnumBase
                                      ? EnumMethod::kEnumBase
                                  : kind == AlgorithmKind::kNaive
                                      ? EnumMethod::kNaive
                                      : EnumMethod::kEnum;
      query_options.deadline = print_deadline;
      status = RunTemporalKCoreQuery(graph, q.k, q.range, &sink,
                                     query_options);
    }
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (want_stats) {
      std::printf("\n%s", stats_sink.Report().c_str());
    }
  }
  return 0;
}
