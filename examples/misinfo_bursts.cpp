// Misinformation-campaign detection scenario from the paper's
// introduction: coordinated campaigns "unfold in bursts over varying time
// scales", and the burst windows are unknown in advance. This example
// compares the exhaustive time-range k-core query against fixed-window
// scanning, showing why enumerating ALL windows matters: fixed windows
// systematically miss bursts that straddle their boundaries.
//
// It also demonstrates the lower-level two-phase API (explicit CoreTime
// phase, then Enum over the skyline) for tooling that wants to reuse the
// skyline across analyses.

#include <cstdio>
#include <set>
#include <vector>

#include "core/enum_algorithm.h"
#include "core/sinks.h"
#include "datasets/generators.h"
#include "graph/temporal_graph.h"
#include "graph/window_peeler.h"
#include "util/rng.h"
#include "vct/vct_builder.h"

namespace {

using namespace tkc;

constexpr uint32_t kAccounts = 500;
constexpr uint32_t kMinutes = 2000;

// Interaction network with one coordinated amplification burst placed to
// straddle a fixed-window boundary.
TemporalGraph BuildInteractionNetwork(std::vector<VertexId>* bot_ring,
                                      Window* burst) {
  Rng rng(99);
  TemporalGraphBuilder builder;
  builder.EnsureVertexCount(kAccounts);
  for (uint32_t i = 0; i < 4000; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(kAccounts));
    VertexId b = static_cast<VertexId>(rng.NextBounded(kAccounts));
    if (a == b) continue;
    builder.AddEdge(a, b, 1 + rng.NextBounded(kMinutes));
  }
  // The bot ring: 10 accounts, pairwise interactions within 40 minutes
  // centered on a 500-minute boundary (minutes 980..1020).
  *burst = Window{980, 1020};
  std::set<VertexId> ring;
  while (ring.size() < 10) {
    ring.insert(static_cast<VertexId>(rng.NextBounded(kAccounts)));
  }
  bot_ring->assign(ring.begin(), ring.end());
  for (size_t i = 0; i < bot_ring->size(); ++i) {
    for (size_t j = i + 1; j < bot_ring->size(); ++j) {
      builder.AddEdge((*bot_ring)[i], (*bot_ring)[j],
                      burst->start + rng.NextBounded(burst->Length()));
    }
  }
  return std::move(builder.Build()).value();
}

bool ContainsRing(const TemporalGraph& g, const std::vector<bool>& in_core,
                  const std::vector<VertexId>& ring) {
  for (VertexId v : ring) {
    if (!in_core[v]) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::vector<VertexId> bot_ring;
  Window burst;
  TemporalGraph graph = BuildInteractionNetwork(&bot_ring, &burst);
  const uint32_t k = 8;
  std::printf("interaction network: %u accounts, %u interactions over %u "
              "minutes\n",
              graph.num_vertices(), graph.num_edges(),
              graph.num_timestamps());
  std::printf("planted bot ring: %zu accounts active in minutes [%u..%u]\n\n",
              bot_ring.size(), burst.start, burst.end);

  // --- Fixed-window scan (what a naive pipeline would do). -------------
  // Fixed windows can at best say "the ring is somewhere in this 500-minute
  // block, mixed into whatever k-core the block happens to have"; they give
  // no activity interval, and blocks missing part of the burst dilute it.
  std::printf("fixed 500-minute window scan for %u-cores:\n", k);
  for (Timestamp start = 1; start + 499 <= graph.num_timestamps();
       start += 500) {
    Window w{start, start + 499};
    std::vector<bool> in_core = ComputeWindowCoreVertices(graph, k, w);
    size_t core_size = 0;
    for (bool b : in_core) core_size += b;
    bool hit = ContainsRing(graph, in_core, bot_ring);
    std::printf("  minutes [%4llu..%4llu]: %s (window core: %zu accounts, "
                "no activity interval)\n",
                static_cast<unsigned long long>(graph.RawTimestamp(w.start)),
                static_cast<unsigned long long>(graph.RawTimestamp(w.end)),
                hit ? "ring present" : "ring not visible", core_size);
  }

  // --- Exhaustive time-range query via the two-phase API. --------------
  std::printf("\nexhaustive time-range %u-core enumeration:\n", k);
  VctBuildResult built = BuildVctAndEcs(graph, k, graph.FullRange());
  std::printf("  CoreTime phase: |VCT|=%llu, |ECS|=%llu\n",
              static_cast<unsigned long long>(built.vct.size()),
              static_cast<unsigned long long>(built.ecs.size()));
  bool found = false;
  Window detected{0, 0};
  uint64_t cores_seen = 0;
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    ++cores_seen;
    // Only burst-scale cores are candidate campaigns; skipping long-TTI
    // cores up front keeps the analysis cost proportional to the candidates
    // rather than to |R|.
    if (tti.Length() > 60) return;
    std::set<VertexId> vertices;
    for (EdgeId e : edges) {
      vertices.insert(graph.edge(e).u);
      vertices.insert(graph.edge(e).v);
    }
    bool all = true;
    for (VertexId v : bot_ring) all &= vertices.count(v) > 0;
    if (all && (!found || tti.Length() < detected.Length())) {
      found = true;
      detected = tti;
    }
  });
  Status status = EnumerateFromEcs(built.ecs, &sink);
  if (!status.ok()) {
    std::fprintf(stderr, "enumeration failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("  %llu distinct cores enumerated\n",
              static_cast<unsigned long long>(cores_seen));
  if (found) {
    std::printf(
        "  -> bot ring DETECTED with tightest activity window minutes "
        "[%llu..%llu] (planted: [%u..%u])\n",
        static_cast<unsigned long long>(graph.RawTimestamp(detected.start)),
        static_cast<unsigned long long>(graph.RawTimestamp(detected.end)),
        burst.start, burst.end);
  } else {
    std::printf("  -> ring not detected (unexpected)\n");
  }
  return 0;
}
