// Anti-money-laundering scenario from the paper's introduction: in a bank
// transaction network (accounts = vertices, transfers = temporal edges),
// smurfing rings appear as dense subgraphs confined to short, unpredictable
// time windows. Enumerating ALL temporal k-cores over a monitoring range
// surfaces every such ring regardless of when exactly it operated — a
// single-window query would miss rings that straddle the window boundary.
//
// The analytic signature of a ring is density *within a short Tightest
// Time Interval*: background traffic also accumulates k-cores, but only
// over long TTIs (weeks of unrelated transfers). The example synthesizes a
// year of transactions with three planted rings, enumerates all temporal
// k-cores, and reports the short-TTI ones.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "core/sinks.h"
#include "core/temporal_kcore.h"
#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace {

using namespace tkc;

struct PlantedRing {
  std::vector<VertexId> members;
  Window days;  // raw day range of the ring's activity
};

// `accounts` accounts trading randomly over `days` days, plus three
// smurfing rings — small account groups transacting pairwise within a few
// days.
TemporalGraph BuildTransactionNetwork(uint32_t accounts, uint32_t days,
                                      uint32_t background_txns,
                                      std::vector<PlantedRing>* rings) {
  Rng rng(2024);
  TemporalGraphBuilder builder;
  builder.EnsureVertexCount(accounts);
  for (uint32_t i = 0; i < background_txns; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(accounts));
    VertexId b = static_cast<VertexId>(rng.NextBounded(accounts));
    if (a == b) continue;
    builder.AddEdge(a, b, 1 + rng.NextBounded(days));
  }
  const struct {
    uint32_t size, start, span;
  } kRings[] = {{6, days / 6, 4}, {8, days / 2, 6}, {5, (4 * days) / 5, 3}};
  for (const auto& r : kRings) {
    PlantedRing ring;
    std::set<VertexId> members;
    while (members.size() < r.size) {
      members.insert(static_cast<VertexId>(rng.NextBounded(accounts)));
    }
    ring.members.assign(members.begin(), members.end());
    ring.days = Window{r.start, r.start + r.span - 1};
    for (size_t i = 0; i < ring.members.size(); ++i) {
      for (size_t j = i + 1; j < ring.members.size(); ++j) {
        uint32_t reps = 1 + static_cast<uint32_t>(rng.NextBounded(2));
        for (uint32_t rep = 0; rep < reps; ++rep) {
          builder.AddEdge(ring.members[i], ring.members[j],
                          r.start + rng.NextBounded(r.span));
        }
      }
    }
    rings->push_back(std::move(ring));
  }
  return std::move(builder.Build()).value();
}

}  // namespace

int main() {
  std::vector<PlantedRing> planted;
  TemporalGraph graph =
      BuildTransactionNetwork(/*accounts=*/400, /*days=*/365,
                              /*background_txns=*/6000, &planted);
  std::printf("transaction network: %u accounts, %u transfers, %u days\n",
              graph.num_vertices(), graph.num_edges(),
              graph.num_timestamps());

  // Monitor the whole year for rings of minimum internal degree 4 whose
  // entire activity fits inside two weeks (raw days).
  const uint32_t k = 4;
  const uint64_t kMaxRingDays = 14;

  struct Detection {
    Window raw_days;
    std::set<VertexId> accounts;
    size_t transfers;
  };
  std::vector<Detection> detections;
  uint64_t total_cores = 0;
  CallbackSink sink([&](Window tti, std::span<const EdgeId> edges) {
    ++total_cores;
    uint64_t raw_lo = graph.RawTimestamp(tti.start);
    uint64_t raw_hi = graph.RawTimestamp(tti.end);
    if (raw_hi - raw_lo + 1 > kMaxRingDays) return;  // background-scale TTI
    Detection d;
    d.raw_days = Window{static_cast<Timestamp>(raw_lo),
                        static_cast<Timestamp>(raw_hi)};
    d.transfers = edges.size();
    for (EdgeId e : edges) {
      d.accounts.insert(graph.edge(e).u);
      d.accounts.insert(graph.edge(e).v);
    }
    detections.push_back(std::move(d));
  });
  QueryStats stats;
  Status status =
      RunTemporalKCoreQuery(graph, k, graph.FullRange(), &sink, {}, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "enumerated %llu temporal %u-cores in %.4fs; %zu have ring-scale "
      "TTIs (<= %llu days)\n\n",
      static_cast<unsigned long long>(total_cores), k, stats.total_seconds,
      detections.size(), static_cast<unsigned long long>(kMaxRingDays));

  // Deduplicate by account set, keep the tightest window per set.
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              return a.raw_days.Length() < b.raw_days.Length();
            });
  std::set<std::set<VertexId>> seen;
  std::printf("suspicious rings (dense short-lived transfer groups):\n");
  for (const Detection& d : detections) {
    if (!seen.insert(d.accounts).second) continue;
    std::printf("  days [%3u..%3u] (%llu days): %zu accounts, %zu transfers:",
                d.raw_days.start, d.raw_days.end,
                static_cast<unsigned long long>(d.raw_days.Length()),
                d.accounts.size(), d.transfers);
    size_t printed = 0;
    for (VertexId v : d.accounts) {
      if (++printed > 10) {
        std::printf(" ...");
        break;
      }
      std::printf(" %u", v);
    }
    std::printf("\n");
  }

  std::printf("\nplanted ring recovery:\n");
  for (size_t i = 0; i < planted.size(); ++i) {
    const PlantedRing& ring = planted[i];
    bool recovered = false;
    for (const Detection& d : detections) {
      bool all_in = true;
      for (VertexId m : ring.members) all_in &= d.accounts.count(m) > 0;
      if (all_in) {
        recovered = true;
        break;
      }
    }
    std::printf("  ring %zu (%zu members, days %u-%u): %s\n", i + 1,
                ring.members.size(), ring.days.start, ring.days.end,
                recovered ? "RECOVERED" : "missed");
  }
  return 0;
}
